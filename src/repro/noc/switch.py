"""The parameterisable switch.

The hardware platform emulates "any NoC packet-switching
intercommunication scheme" by instantiating a network of switches whose
three parameters the paper calls out on Slide 6: **number of inputs**,
**number of outputs** and **size of buffers**.  This module models one
such switch at cycle granularity:

* one bounded flit FIFO per input port (input-buffered switch),
* per-output arbitration (round-robin by default),
* credit-based flow control toward each downstream buffer,
* wormhole switching (a HEAD flit locks an output port for its packet
  until the TAIL passes) or store-and-forward switching (a packet only
  moves once fully buffered) for the switching-mode ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.noc.arbiter import Arbiter, make_arbiter
from repro.noc.buffer import BufferFullError, FlitBuffer
from repro.noc.flit import Flit
from repro.noc.routing import RoutingFunction


class SwitchingMode(enum.Enum):
    """Packet-switching discipline of the emulated switch."""

    WORMHOLE = "wormhole"
    STORE_AND_FORWARD = "store_and_forward"


@dataclass
class SwitchConfig:
    """Parameters of one switch (the Slide 6 parameter set).

    ``buffer_depth`` is the per-input FIFO capacity in flits.
    ``arbitration`` names a policy understood by
    :func:`repro.noc.arbiter.make_arbiter`.
    """

    n_inputs: int
    n_outputs: int
    buffer_depth: int = 4
    arbitration: str = "round_robin"
    mode: SwitchingMode = SwitchingMode.WORMHOLE

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("switch needs >= 1 input port")
        if self.n_outputs < 1:
            raise ValueError("switch needs >= 1 output port")
        if self.buffer_depth < 1:
            raise ValueError("buffer depth must be >= 1 flit")
        if isinstance(self.mode, str):
            self.mode = SwitchingMode(self.mode)


@dataclass(slots=True)
class _OutputPort:
    """Book-keeping for one output port, wired up by the network."""

    send: Callable[[Flit, int], None]
    credits: int  # remaining downstream buffer slots (None -> infinite)
    infinite_credits: bool = False
    lock: Optional[int] = None  # input index holding the wormhole channel
    flits_sent: int = 0
    #: The Link behind ``send`` when the sink is a plain link, letting
    #: the traverse fast path inline the send; None for custom sinks.
    link: Optional[object] = None


class Switch:
    """One input-buffered switch of the emulation platform.

    The network drives the switch with :meth:`receive` (flit arrival
    from a link or a network interface), :meth:`credit` (flow-control
    credit returned by a downstream buffer) and :meth:`traverse` (one
    cycle of arbitration and flit movement).
    """

    __slots__ = (
        "switch_id",
        "config",
        "routing",
        "inputs",
        "arbiters",
        "_in_scan",
        "_outputs",
        "_input_pop_hooks",
        "_input_route",
        "_buffered",
        "_wake",
        "_clock",
        "_active",
        "_sf_mode",
        "_parked",
        "_park_cycle",
        "_park_blocked",
        "_park_credit_stalls",
        "_park_wait_ports",
        "_requests",
        "_blocked_heads",
        "_credit_blocked_ports",
        "flits_forwarded",
        "_blocked_flit_cycles",
        "_credit_stall_cycles",
    )

    def __init__(
        self,
        switch_id: int,
        config: SwitchConfig,
        routing: RoutingFunction,
    ) -> None:
        self.switch_id = switch_id
        self.config = config
        self.routing = routing
        self.inputs: List[FlitBuffer] = [
            FlitBuffer(
                config.buffer_depth,
                name=f"sw{switch_id}.in{i}",
                track_packets=config.mode is SwitchingMode.STORE_AND_FORWARD,
            )
            for i in range(config.n_inputs)
        ]
        self.arbiters: List[Arbiter] = [
            make_arbiter(config.arbitration, config.n_inputs)
            for _ in range(config.n_outputs)
        ]
        # Pre-zipped (index, buffer, fifo) triples: the traverse scan
        # touches each input without enumerate/attribute lookups (the
        # deque identity is stable for the buffer's lifetime).
        self._in_scan: List[tuple] = [
            (i, buf, buf._fifo) for i, buf in enumerate(self.inputs)
        ]
        self._outputs: List[Optional[_OutputPort]] = [
            None
        ] * config.n_outputs
        # Called with the current cycle whenever a flit is popped from
        # the corresponding input buffer, so the network can return a
        # flow-control credit to whoever feeds that buffer.
        self._input_pop_hooks: List[Optional[Callable[[int], None]]] = [
            None
        ] * config.n_inputs
        # Cached route of the packet currently at the head of each input
        # (set when its HEAD flit is routed, cleared when TAIL leaves).
        self._input_route: List[Optional[int]] = [None] * config.n_inputs
        # Incremental flit count across all input buffers, and the
        # network's wake-up hook fired whenever the switch needs to
        # (re)join the active set: on the empty -> busy transition and
        # on unpark (event-driven scheduling: an idle or fully blocked
        # switch costs nothing per cycle).  ``_clock`` reads the
        # network cycle and gates parking: without it (standalone
        # switches in unit tests) the switch never parks.
        self._buffered = 0
        self._wake: Optional[Callable[[], None]] = None
        self._clock: Optional[Callable[[], int]] = None
        self._active = False
        self._sf_mode = config.mode is SwitchingMode.STORE_AND_FORWARD
        # Parking state.  A switch whose every pending traverse is
        # blocked (no credits, channel locked, store-and-forward
        # waiting on a partial packet) leaves the network's active set
        # and freezes here: the blocked heads of the parking cycle,
        # how many of them stalled purely on credits, and the output
        # ports whose credit return can unblock them.  Stall
        # statistics for the parked stretch are bulk-settled on
        # wake-up (see ``_settle``), so a parked cycle costs zero
        # Python.
        self._parked = False
        self._park_cycle = 0  # last cycle whose stalls are settled
        self._park_blocked: Tuple[Flit, ...] = ()
        self._park_credit_stalls = 0
        self._park_wait_ports: FrozenSet[int] = frozenset()
        # Scratch containers reused across traverse calls (cleared at
        # the start of each call) to keep allocations off the hot path.
        self._requests: Dict[int, List[int]] = {}
        self._blocked_heads: List[Flit] = []
        self._credit_blocked_ports: List[int] = []
        # Statistics.
        self.flits_forwarded = 0
        self._blocked_flit_cycles = 0  # head wanted to move, couldn't
        self._credit_stall_cycles = 0  # subset blocked purely on credits

    # ------------------------------------------------------------------
    # Wiring (done once by the network)
    # ------------------------------------------------------------------
    def connect_output(
        self,
        port: int,
        send: Callable[[Flit, int], None],
        credits: Optional[int],
        link: Optional[object] = None,
    ) -> None:
        """Attach output ``port`` to a sink.

        ``credits`` is the downstream buffer capacity, or ``None`` for a
        sink that always accepts (a traffic receptor consuming one flit
        per cycle never backpressures the switch).  ``link`` names the
        :class:`~repro.noc.link.Link` behind ``send`` when there is
        one, enabling the inlined send fast path.
        """
        if self._outputs[port] is not None:
            raise RuntimeError(
                f"output port {port} of switch {self.switch_id} is"
                f" already connected"
            )
        infinite = credits is None
        self._outputs[port] = _OutputPort(
            send=send,
            credits=0 if infinite else credits,
            infinite_credits=infinite,
            link=link,
        )

    def connect_input_hook(
        self, port: int, hook: Callable[[int], None]
    ) -> None:
        """Register the credit-return hook for input ``port``."""
        if self._input_pop_hooks[port] is not None:
            raise RuntimeError(
                f"input port {port} of switch {self.switch_id} already"
                f" has a credit hook"
            )
        self._input_pop_hooks[port] = hook

    def check_wired(self) -> None:
        for port, out in enumerate(self._outputs):
            if out is None:
                raise RuntimeError(
                    f"output port {port} of switch {self.switch_id} is"
                    f" not connected"
                )

    # ------------------------------------------------------------------
    # Per-cycle interface
    # ------------------------------------------------------------------
    def receive(self, port: int, flit: Flit, now: int = 0) -> None:
        """A flit arrives on input ``port`` (from a link or an NI).

        ``now`` is accepted (and ignored) so the network can bind this
        method directly as a link delivery sink via ``partial``.  The
        body is :meth:`FlitBuffer.push` inlined — this is one of the
        two per-flit-hop hot spots of the whole simulator.
        """
        buf = self.inputs[port]
        fifo = buf._fifo
        if len(fifo) >= buf.capacity:
            raise BufferFullError(
                f"push into full buffer {buf.name or id(buf)} "
                f"(capacity {buf.capacity})"
            )
        fifo.append(flit)
        counts = buf._pid_counts
        if counts is not None:
            pid = flit.packet.pid
            counts[pid] = counts.get(pid, 0) + 1
        buf.total_pushes += 1
        if len(fifo) > buf.peak_occupancy:
            buf.peak_occupancy = len(fifo)
        self._buffered += 1
        if self._buffered == 1:
            # Empty -> busy: an empty switch is never parked.
            if self._wake is not None:
                self._wake()
        elif self._parked and (len(fifo) == 1 or self._sf_mode):
            # A flit into a previously empty buffer creates a new head
            # to route, and under store-and-forward any arrival can
            # complete a waiting packet: wake up.  A flit landing
            # behind an already blocked head changes nothing — stay
            # parked.  The traverse of this cycle already passed, so
            # settlement includes the current cycle.
            self._settle(now)
            self._parked = False
            if self._wake is not None:
                self._wake()

    def credit(self, port: int, count: int = 1) -> None:
        """Downstream freed ``count`` buffer slots behind output ``port``."""
        out = self._outputs[port]
        assert out is not None
        if not out.infinite_credits:
            out.credits += count
        if self._parked and port in self._park_wait_ports:
            self._credit_wake()

    def _credit_wake(self) -> None:
        """Wake from parked: the credit a blocked head starved for
        arrived.  Credits return in the network's first phase, before
        this cycle's traverse, so settlement stops at the previous
        cycle and the switch re-enters the active set in time to move
        the unblocked flit this cycle."""
        self._settle(self._clock() - 1)
        self._parked = False
        if self._wake is not None:
            self._wake()

    def _desired_output(self, input_port: int) -> Optional[int]:
        """Output the head flit of ``input_port`` wants, or None to wait.

        Routes HEAD flits through the routing function and caches the
        result so the packet's body follows the same channel.  Under
        store-and-forward, a packet only requests an output once all of
        its flits sit in the buffer.
        """
        buf = self.inputs[input_port]
        fifo = buf._fifo
        if not fifo:
            return None
        head = fifo[0]
        cached = self._input_route[input_port]
        if cached is not None:
            # Mid-packet: follow the channel the HEAD flit opened.
            return cached
        # Only HEAD flits may be unrouted; a BODY flit at the head of a
        # buffer with no cached route indicates a protocol bug.
        if not head.is_head:
            raise RuntimeError(
                f"non-head flit {head!r} at head of"
                f" sw{self.switch_id}.in{input_port} without a route"
            )
        if self.config.mode is SwitchingMode.STORE_AND_FORWARD:
            length = head.packet.length
            if length > buf.capacity:
                raise RuntimeError(
                    f"store-and-forward switch {self.switch_id} has"
                    f" {buf.capacity}-flit buffers but received a"
                    f" {length}-flit packet"
                )
            if buf.packet_flit_count(head.packet.pid) < length:
                return None  # wait for the full packet
        route = self.routing.output_port(self.switch_id, head)
        self._input_route[input_port] = route
        return route

    def traverse(self, now: int) -> int:
        """One cycle of arbitration and switch traversal.

        Returns the number of flits forwarded this cycle.  At most one
        flit leaves per output port and at most one flit leaves per
        input port.
        """
        # Fast idle path: nothing buffered, nothing to do.
        if not self._buffered:
            return 0
        if self._parked:
            # Self-healing for the scan-everything reference path (and
            # mixed stepping): a traverse on a parked switch settles
            # the parked stretch first, then ticks this cycle itself.
            self._settle(now - 1)
            self._parked = False
        inputs = self.inputs
        outputs = self._outputs
        routes = self._input_route
        pop_hooks = self._input_pop_hooks
        requests = self._requests
        blocked_heads = self._blocked_heads
        credit_ports = self._credit_blocked_ports
        if requests:
            requests.clear()
        if blocked_heads:
            blocked_heads.clear()
        if credit_ports:
            credit_ports.clear()
        moved = 0
        for i, buf, fifo in self._in_scan:
            if not fifo:
                continue
            # Mid-packet flits follow the channel the HEAD opened; only
            # unrouted heads take the full routing/S&F slow path.
            desired = routes[i]
            if desired is None:
                desired = self._desired_output(i)
                if desired is None:
                    continue
            out = outputs[desired]
            lock = out.lock
            if lock == i:
                flit = fifo[0]
                if not flit.is_tail:
                    # Streaming fast path: a mid-packet flit on its
                    # exclusively locked channel cannot face
                    # arbitration, and moving it changes no state any
                    # other input's scan decision depends on.  (Tail
                    # flits release the lock, which must stay visible
                    # only after the scan, so they take the slow path.)
                    if out.infinite_credits:
                        pass
                    elif out.credits > 0:
                        out.credits -= 1
                    else:
                        blocked_heads.append(flit)
                        credit_ports.append(desired)
                        continue
                    # FlitBuffer.pop inlined (the other per-hop hot
                    # spot); the buffer is non-empty by construction.
                    fifo.popleft()
                    buf.total_pops += 1
                    counts = buf._pid_counts
                    if counts is not None:
                        pid = flit.packet.pid
                        remaining = counts[pid] - 1
                        if remaining:
                            counts[pid] = remaining
                        else:
                            del counts[pid]
                    self._buffered -= 1
                    hook = pop_hooks[i]
                    if hook is not None:
                        hook(now)
                    link = out.link
                    if link is None or link.wheel is None:
                        out.send(flit, now)
                    else:
                        # Link.send inlined: the third per-hop hot
                        # spot.  The flit goes straight into the
                        # network's delivery wheel slot for its
                        # arrival cycle.
                        if link._last_send_cycle == now:
                            out.send(flit, now)  # raises the protocol error
                        link._last_send_cycle = now
                        link.wheel[
                            (now + link.delay) % link.wheel_size
                        ].append((link, flit))
                        link.wire_count += 1
                        link.flits_carried += 1
                        link.busy_cycles += 1
                    out.flits_sent += 1
                    moved += 1
                    continue
            elif lock is not None:
                # Channel held by another packet's wormhole.
                blocked_heads.append(fifo[0])
                continue
            if not out.infinite_credits and out.credits <= 0:
                blocked_heads.append(fifo[0])
                credit_ports.append(desired)
                continue
            if desired in requests:
                requests[desired].append(i)
            else:
                requests[desired] = [i]

        if requests:
            for port, reqs in requests.items():
                out = outputs[port]
                if out.lock is not None:
                    # The locked input has exclusive use of this channel.
                    winner = out.lock
                else:
                    winner = self.arbiters[port].grant(reqs)
                # FlitBuffer.pop and Link.send inlined, as on the
                # streaming path (head/tail flits come through here).
                buf = inputs[winner]
                fifo = buf._fifo
                flit = fifo.popleft()
                buf.total_pops += 1
                counts = buf._pid_counts
                if counts is not None:
                    pid = flit.packet.pid
                    remaining = counts[pid] - 1
                    if remaining:
                        counts[pid] = remaining
                    else:
                        del counts[pid]
                self._buffered -= 1
                hook = pop_hooks[winner]
                if hook is not None:
                    hook(now)
                link = out.link
                if link is None or link.wheel is None:
                    out.send(flit, now)
                else:
                    if link._last_send_cycle == now:
                        out.send(flit, now)  # raises the protocol error
                    link._last_send_cycle = now
                    link.wheel[
                        (now + link.delay) % link.wheel_size
                    ].append((link, flit))
                    link.wire_count += 1
                    link.flits_carried += 1
                    link.busy_cycles += 1
                out.flits_sent += 1
                if not out.infinite_credits:
                    out.credits -= 1
                moved += 1
                # Wormhole channel state.
                if flit.is_tail:
                    out.lock = None
                    routes[winner] = None
                elif flit.is_head:
                    out.lock = winner
                # Losers of this arbitration stalled.
                for loser in reqs:
                    if loser != winner:
                        head = inputs[loser].head()
                        if head is not None:
                            blocked_heads.append(head)

        if blocked_heads:
            for head in blocked_heads:
                head.stall_cycles += 1
            self._blocked_flit_cycles += len(blocked_heads)
            if credit_ports:
                self._credit_stall_cycles += len(credit_ports)
        self.flits_forwarded += moved
        return moved

    # ------------------------------------------------------------------
    # Parking (driven by the network's event-driven step)
    # ------------------------------------------------------------------
    def _park(self, now: int) -> None:
        """Freeze the blocked state of the traverse that just ran.

        Called by the network when a busy switch moved nothing this
        cycle: every non-empty input is then blocked (no credits,
        channel locked by another wormhole, or store-and-forward
        waiting on a partial packet), and — absent external events —
        every later traverse would reproduce this cycle's outcome
        exactly.  The switch leaves the active set; ``receive`` and
        ``credit`` wake it on precisely the events that can change the
        outcome, settling the per-cycle stall statistics for the whole
        parked stretch in one step.
        """
        self._parked = True
        self._park_cycle = now
        self._park_blocked = tuple(self._blocked_heads)
        ports = self._credit_blocked_ports
        self._park_credit_stalls = len(ports)
        self._park_wait_ports = frozenset(ports)

    def _settle(self, until: int) -> None:
        """Account the stalls of parked cycles ``park_cycle+1..until``.

        Equivalent to running ``traverse`` for each of those cycles:
        every frozen blocked head stalls once per cycle, the switch
        counters advance by the same per-cycle deltas the parking
        traverse produced.
        """
        elapsed = until - self._park_cycle
        if elapsed <= 0:
            return
        self._park_cycle = until
        blocked = self._park_blocked
        if blocked:
            for head in blocked:
                head.stall_cycles += elapsed
            self._blocked_flit_cycles += len(blocked) * elapsed
            self._credit_stall_cycles += (
                self._park_credit_stalls * elapsed
            )

    def _pending_park_cycles(self) -> int:
        """Parked cycles whose stalls are not yet settled (read path)."""
        if not self._parked or self._clock is None:
            return 0
        return max(0, self._clock() - 1 - self._park_cycle)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def sample_buffers(self) -> None:
        """Record one cycle of buffer occupancy on every input FIFO."""
        for buf in self.inputs:
            buf.sample()

    @property
    def buffered_flits(self) -> int:
        """Flits currently sitting in this switch's input buffers."""
        return self._buffered

    @property
    def blocked_flit_cycles(self) -> int:
        """Head-of-line blocking events (settled through the last
        emulated cycle, including any still-parked stretch)."""
        pending = self._pending_park_cycles()
        if pending:
            return self._blocked_flit_cycles + pending * len(
                self._park_blocked
            )
        return self._blocked_flit_cycles

    @property
    def credit_stall_cycles(self) -> int:
        """Subset of blocking events stalled purely on credits."""
        pending = self._pending_park_cycles()
        if pending:
            return (
                self._credit_stall_cycles
                + pending * self._park_credit_stalls
            )
        return self._credit_stall_cycles

    def output_credits(self, port: int) -> Optional[int]:
        """Remaining credits of output ``port`` (None = infinite)."""
        out = self._outputs[port]
        assert out is not None
        return None if out.infinite_credits else out.credits

    def reset_stats(self) -> None:
        if self._parked and self._clock is not None:
            # Reset-while-parked: per-flit stall counters survive a
            # statistics reset, so the parked stretch up to the reset
            # must settle into them first; the switch counters are
            # then zeroed and the (still valid) parked state keeps
            # accumulating into the fresh window.
            self._settle(self._clock() - 1)
        self.flits_forwarded = 0
        self._blocked_flit_cycles = 0
        self._credit_stall_cycles = 0
        for buf in self.inputs:
            buf.reset_stats()
        for arb in self.arbiters:
            arb.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Switch({self.switch_id}, in={self.config.n_inputs},"
            f" out={self.config.n_outputs},"
            f" depth={self.config.buffer_depth})"
        )
