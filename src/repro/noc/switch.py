"""The parameterisable switch.

The hardware platform emulates "any NoC packet-switching
intercommunication scheme" by instantiating a network of switches whose
three parameters the paper calls out on Slide 6: **number of inputs**,
**number of outputs** and **size of buffers**.  This module models one
such switch at cycle granularity:

* one bounded flit FIFO per input port (input-buffered switch),
* per-output arbitration (round-robin by default),
* credit-based flow control toward each downstream buffer,
* wormhole switching (a HEAD flit locks an output port for its packet
  until the TAIL passes) or store-and-forward switching (a packet only
  moves once fully buffered) for the switching-mode ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.noc.arbiter import Arbiter, make_arbiter
from repro.noc.buffer import FlitBuffer
from repro.noc.flit import Flit
from repro.noc.routing import RoutingFunction


class SwitchingMode(enum.Enum):
    """Packet-switching discipline of the emulated switch."""

    WORMHOLE = "wormhole"
    STORE_AND_FORWARD = "store_and_forward"


@dataclass
class SwitchConfig:
    """Parameters of one switch (the Slide 6 parameter set).

    ``buffer_depth`` is the per-input FIFO capacity in flits.
    ``arbitration`` names a policy understood by
    :func:`repro.noc.arbiter.make_arbiter`.
    """

    n_inputs: int
    n_outputs: int
    buffer_depth: int = 4
    arbitration: str = "round_robin"
    mode: SwitchingMode = SwitchingMode.WORMHOLE

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("switch needs >= 1 input port")
        if self.n_outputs < 1:
            raise ValueError("switch needs >= 1 output port")
        if self.buffer_depth < 1:
            raise ValueError("buffer depth must be >= 1 flit")
        if isinstance(self.mode, str):
            self.mode = SwitchingMode(self.mode)


@dataclass
class _OutputPort:
    """Book-keeping for one output port, wired up by the network."""

    send: Callable[[Flit, int], None]
    credits: int  # remaining downstream buffer slots (None -> infinite)
    infinite_credits: bool = False
    lock: Optional[int] = None  # input index holding the wormhole channel
    flits_sent: int = 0


class Switch:
    """One input-buffered switch of the emulation platform.

    The network drives the switch with :meth:`receive` (flit arrival
    from a link or a network interface), :meth:`credit` (flow-control
    credit returned by a downstream buffer) and :meth:`traverse` (one
    cycle of arbitration and flit movement).
    """

    def __init__(
        self,
        switch_id: int,
        config: SwitchConfig,
        routing: RoutingFunction,
    ) -> None:
        self.switch_id = switch_id
        self.config = config
        self.routing = routing
        self.inputs: List[FlitBuffer] = [
            FlitBuffer(config.buffer_depth, name=f"sw{switch_id}.in{i}")
            for i in range(config.n_inputs)
        ]
        self.arbiters: List[Arbiter] = [
            make_arbiter(config.arbitration, config.n_inputs)
            for _ in range(config.n_outputs)
        ]
        self._outputs: List[Optional[_OutputPort]] = [
            None
        ] * config.n_outputs
        # Called with the current cycle whenever a flit is popped from
        # the corresponding input buffer, so the network can return a
        # flow-control credit to whoever feeds that buffer.
        self._input_pop_hooks: List[Optional[Callable[[int], None]]] = [
            None
        ] * config.n_inputs
        # Cached route of the packet currently at the head of each input
        # (set when its HEAD flit is routed, cleared when TAIL leaves).
        self._input_route: List[Optional[int]] = [None] * config.n_inputs
        # Statistics.
        self.flits_forwarded = 0
        self.blocked_flit_cycles = 0  # head flit wanted to move, couldn't
        self.credit_stall_cycles = 0  # subset blocked purely on credits

    # ------------------------------------------------------------------
    # Wiring (done once by the network)
    # ------------------------------------------------------------------
    def connect_output(
        self,
        port: int,
        send: Callable[[Flit, int], None],
        credits: Optional[int],
    ) -> None:
        """Attach output ``port`` to a sink.

        ``credits`` is the downstream buffer capacity, or ``None`` for a
        sink that always accepts (a traffic receptor consuming one flit
        per cycle never backpressures the switch).
        """
        if self._outputs[port] is not None:
            raise RuntimeError(
                f"output port {port} of switch {self.switch_id} is"
                f" already connected"
            )
        infinite = credits is None
        self._outputs[port] = _OutputPort(
            send=send,
            credits=0 if infinite else credits,
            infinite_credits=infinite,
        )

    def connect_input_hook(
        self, port: int, hook: Callable[[int], None]
    ) -> None:
        """Register the credit-return hook for input ``port``."""
        if self._input_pop_hooks[port] is not None:
            raise RuntimeError(
                f"input port {port} of switch {self.switch_id} already"
                f" has a credit hook"
            )
        self._input_pop_hooks[port] = hook

    def check_wired(self) -> None:
        for port, out in enumerate(self._outputs):
            if out is None:
                raise RuntimeError(
                    f"output port {port} of switch {self.switch_id} is"
                    f" not connected"
                )

    # ------------------------------------------------------------------
    # Per-cycle interface
    # ------------------------------------------------------------------
    def receive(self, port: int, flit: Flit) -> None:
        """A flit arrives on input ``port`` (from a link or an NI)."""
        self.inputs[port].push(flit)

    def credit(self, port: int, count: int = 1) -> None:
        """Downstream freed ``count`` buffer slots behind output ``port``."""
        out = self._outputs[port]
        assert out is not None
        if not out.infinite_credits:
            out.credits += count

    def _desired_output(self, input_port: int) -> Optional[int]:
        """Output the head flit of ``input_port`` wants, or None to wait.

        Routes HEAD flits through the routing function and caches the
        result so the packet's body follows the same channel.  Under
        store-and-forward, a packet only requests an output once all of
        its flits sit in the buffer.
        """
        buf = self.inputs[input_port]
        fifo = buf._fifo
        if not fifo:
            return None
        head = fifo[0]
        cached = self._input_route[input_port]
        if cached is not None:
            # Mid-packet: follow the channel the HEAD flit opened.
            return cached
        # Only HEAD flits may be unrouted; a BODY flit at the head of a
        # buffer with no cached route indicates a protocol bug.
        if not head.is_head:
            raise RuntimeError(
                f"non-head flit {head!r} at head of"
                f" sw{self.switch_id}.in{input_port} without a route"
            )
        if self.config.mode is SwitchingMode.STORE_AND_FORWARD:
            length = head.packet.length
            if length > buf.capacity:
                raise RuntimeError(
                    f"store-and-forward switch {self.switch_id} has"
                    f" {buf.capacity}-flit buffers but received a"
                    f" {length}-flit packet"
                )
            buffered = sum(
                1 for f in buf if f.packet.pid == head.packet.pid
            )
            if buffered < length:
                return None  # wait for the full packet
        route = self.routing.output_port(self.switch_id, head)
        self._input_route[input_port] = route
        return route

    def traverse(self, now: int) -> int:
        """One cycle of arbitration and switch traversal.

        Returns the number of flits forwarded this cycle.  At most one
        flit leaves per output port and at most one flit leaves per
        input port.
        """
        inputs = self.inputs
        # Fast idle path: nothing buffered, nothing to do.
        for buf in inputs:
            if buf._fifo:
                break
        else:
            return 0
        requests: Dict[int, List[int]] = {}
        blocked_heads: List[Flit] = []
        for i, buf in enumerate(inputs):
            if not buf._fifo:
                continue
            desired = self._desired_output(i)
            if desired is None:
                continue
            out = self._outputs[desired]
            assert out is not None
            head = buf._fifo[0]
            if out.lock is not None and out.lock != i:
                # Channel held by another packet's wormhole.
                blocked_heads.append(head)
                continue
            if not out.infinite_credits and out.credits <= 0:
                blocked_heads.append(head)
                self.credit_stall_cycles += 1
                continue
            if desired in requests:
                requests[desired].append(i)
            else:
                requests[desired] = [i]

        moved = 0
        for port, reqs in requests.items():
            out = self._outputs[port]
            assert out is not None
            if out.lock is not None:
                # The locked input has exclusive use of this channel.
                winner = out.lock
            else:
                granted = self.arbiters[port].grant(reqs)
                assert granted is not None
                winner = granted
            flit = self.inputs[winner].pop()
            hook = self._input_pop_hooks[winner]
            if hook is not None:
                hook(now)
            out.send(flit, now)
            out.flits_sent += 1
            if not out.infinite_credits:
                out.credits -= 1
            moved += 1
            # Wormhole channel state.
            if flit.is_tail:
                out.lock = None
                self._input_route[winner] = None
            elif flit.is_head:
                out.lock = winner
            # Losers of this arbitration stalled.
            for loser in reqs:
                if loser != winner:
                    head = self.inputs[loser].head()
                    if head is not None:
                        blocked_heads.append(head)

        for head in blocked_heads:
            head.stall_cycles += 1
        self.blocked_flit_cycles += len(blocked_heads)
        self.flits_forwarded += moved
        return moved

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def sample_buffers(self) -> None:
        """Record one cycle of buffer occupancy on every input FIFO."""
        for buf in self.inputs:
            buf.sample()

    @property
    def buffered_flits(self) -> int:
        """Flits currently sitting in this switch's input buffers."""
        return sum(len(buf) for buf in self.inputs)

    def output_credits(self, port: int) -> Optional[int]:
        """Remaining credits of output ``port`` (None = infinite)."""
        out = self._outputs[port]
        assert out is not None
        return None if out.infinite_credits else out.credits

    def reset_stats(self) -> None:
        self.flits_forwarded = 0
        self.blocked_flit_cycles = 0
        self.credit_stall_cycles = 0
        for buf in self.inputs:
            buf.reset_stats()
        for arb in self.arbiters:
            arb.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Switch({self.switch_id}, in={self.config.n_inputs},"
            f" out={self.config.n_outputs},"
            f" depth={self.config.buffer_depth})"
        )
