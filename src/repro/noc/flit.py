"""Flits and packets.

The emulated NoC is packet-switched: a network interface segments each
packet into *flits* (flow-control digits), the atomic unit moved by
switches in one cycle.  A packet of ``length`` flits is encoded as one
HEAD flit, ``length - 2`` BODY flits and one TAIL flit; a single-flit
packet is a HEAD_TAIL flit.  The HEAD flit carries the routing
information (destination), mirroring the header flit of the hardware
platform.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        """True for flits that open a packet (carry routing info)."""
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        """True for flits that close a packet (release wormhole channels)."""
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_packet_ids = itertools.count()


def _next_packet_id() -> int:
    return next(_packet_ids)


@dataclass
class Packet:
    """A packet as produced by a traffic generator.

    Parameters
    ----------
    src, dst:
        Node indices of the generating and receiving network interface.
    length:
        Packet length in flits (>= 1).
    injection_cycle:
        Cycle at which the generator handed the packet to its network
        interface.  Latency is measured from this point (the latency
        analyzer of the paper measures generation-to-reception time).
    wire_entry_cycle:
        Cycle the HEAD flit actually left the network interface (set
        by the NI).  ``wire_entry_cycle - injection_cycle`` is the
        source-queueing component of the latency; the analyzer splits
        total latency into queueing + network time with it.
    burst_id:
        Identifier of the burst this packet belongs to for burst/trace
        traffic; ``None`` for traffic without burst structure.
    payload:
        Opaque payload used by tests and trace replay to check integrity.
    """

    src: int
    dst: int
    length: int
    injection_cycle: int = 0
    wire_entry_cycle: Optional[int] = None
    burst_id: Optional[int] = None
    payload: Optional[object] = None  # repro: allow[state-coverage] opaque test/replay payload; excluded from checkpoints by design
    pid: int = field(default_factory=_next_packet_id)

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"packet length must be >= 1, got {self.length}")
        if self.src < 0 or self.dst < 0:
            raise ValueError("src and dst must be non-negative node indices")

    def flits(self) -> List["Flit"]:
        """Segment the packet into flits, in transmission order.

        Returns an eager list: the NI extends its source queue with it
        in one C-level call, which beats draining a generator frame
        per flit on the offer hot path.
        """
        if self.length == 1:
            return [Flit(FlitType.HEAD_TAIL, self, seq=0)]
        flits = [Flit(FlitType.HEAD, self, seq=0)]
        for seq in range(1, self.length - 1):
            flits.append(Flit(FlitType.BODY, self, seq=seq))
        flits.append(Flit(FlitType.TAIL, self, seq=self.length - 1))
        return flits

    def flit_list(self) -> List["Flit"]:
        """Eagerly segmented flits (alias kept for tests)."""
        return self.flits()


class Flit:
    """One flow-control digit of a packet.

    A flit knows its packet, so the receiving network interface can
    reassemble packets and the statistics devices can attribute latency
    and congestion to the right flow.  ``stall_cycles`` accumulates the
    number of cycles the flit sat at the head of a buffer without being
    able to advance; the congestion counter aggregates it.

    Flits are the unit object of the simulator's inner loop, so the
    per-packet constants (``src``, ``dst``, ``is_head``, ``is_tail``)
    are materialised as plain attributes at construction instead of
    being recomputed through properties on every switch traversal.
    """

    __slots__ = (
        "kind",
        "packet",
        "seq",  # repro: allow[state-coverage] re-derived via Packet.flits() during restore
        "stall_cycles",
        "is_head",  # repro: allow[state-coverage] re-derived via Packet.flits() during restore
        "is_tail",  # repro: allow[state-coverage] re-derived via Packet.flits() during restore
        "src",
        "dst",
    )

    def __init__(self, kind: FlitType, packet: Packet, seq: int) -> None:
        self.kind = kind
        self.packet = packet
        self.seq = seq
        self.stall_cycles = 0
        self.is_head = kind is FlitType.HEAD or kind is FlitType.HEAD_TAIL
        self.is_tail = kind is FlitType.TAIL or kind is FlitType.HEAD_TAIL
        self.src = packet.src
        self.dst = packet.dst

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flit({self.kind.value}, pid={self.packet.pid}, seq={self.seq},"
            f" {self.src}->{self.dst})"
        )
