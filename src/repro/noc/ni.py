"""Network interfaces.

Slide 10 of the paper: the traffic-generator structure ends in "a
network interface [that] converts a traffic pattern in flits for NoC"
and "can be adapted for any type of NoC".  The TX side here segments
packets into flits and injects them under credit-based flow control; the
RX side reassembles flits into packets and hands completed packets to
whatever receptor device is attached.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.noc.flit import Flit, Packet
from repro.noc.link import Link


class NetworkInterface:
    """Transmit-side NI: packet segmentation plus credit-controlled injection.

    One instance sits between a traffic generator and the input port of
    its local switch.  ``offer`` queues a packet; :meth:`inject` is
    called once per cycle by the network and pushes at most one flit
    onto the injection link when a downstream buffer slot (credit) is
    available.
    """

    __slots__ = (
        "node",
        "name",  # repro: allow[state-coverage] derived from the node id at construction
        "_flits",
        "_link",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_credits",
        "_notify_offer",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_wake",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_clock",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_active",
        "_parked",
        "_park_cycle",
        "_drain_level",  # repro: allow[state-coverage] re-armed via watch_drain during generator restore
        "_on_drain",  # repro: allow[state-coverage] re-armed via watch_drain during generator restore
        "offered_packets",
        "injected_flits",
        "injected_packets",
        "_stall_cycles",
        "peak_queue",
    )

    def __init__(self, node: int, name: str = "") -> None:
        self.node = node
        self.name = name or f"ni{node}"
        self._flits: Deque[Flit] = deque()
        self._link: Optional[Link] = None
        self._credits = 0
        # Event-driven scheduling hooks (set by the network): the
        # offer hook is called with the queued flit count on every
        # offer, so the network can bump its in-flight counter and
        # mark this NI active; the wake hook re-activates a parked NI.
        # ``_clock`` reads the network cycle for bulk settlement.
        self._notify_offer: Optional[Callable[[int], None]] = None
        self._wake: Optional[Callable[[], None]] = None
        self._clock: Optional[Callable[[], int]] = None
        self._active = False
        # Parking state: a credit-starved NI (queued flits, zero
        # credits) leaves the network's active set; only the credit
        # return of its injection link (or a fresh offer, or a reset)
        # can change its outcome, and per-cycle stall statistics for
        # the parked stretch settle in bulk on wake-up.
        self._parked = False
        self._park_cycle = 0
        # Source-queue drain watch: the traffic generator arms it to
        # learn when the queue drops below its backpressure limit (see
        # TrafficGenerator), without polling every cycle.
        self._drain_level: Optional[int] = None
        self._on_drain: Optional[Callable[[int], None]] = None
        # Statistics.
        self.offered_packets = 0
        self.injected_flits = 0
        self.injected_packets = 0
        self._stall_cycles = 0
        self.peak_queue = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, link: Link, credits: int) -> None:
        if self._link is not None:
            raise RuntimeError(f"{self.name} is already connected")
        self._link = link
        self._credits = credits

    # ------------------------------------------------------------------
    # Generator-facing interface
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue ``packet`` for injection (segmented immediately)."""
        self.offered_packets += 1
        self._flits.extend(packet.flits())
        if len(self._flits) > self.peak_queue:
            self.peak_queue = len(self._flits)
        if self._parked:
            # Offers land before this cycle's inject phase, which will
            # run again once the network re-activates the NI below —
            # settlement therefore stops at the previous cycle.
            self._settle(self._clock() - 1)
            self._parked = False
        if self._notify_offer is not None:
            self._notify_offer(packet.length)

    @property
    def pending_flits(self) -> int:
        """Flits queued but not yet on the wire (source queue depth)."""
        return len(self._flits)

    @property
    def idle(self) -> bool:
        return not self._flits

    # ------------------------------------------------------------------
    # Network-facing interface
    # ------------------------------------------------------------------
    def credit(self, count: int = 1) -> None:
        self._credits += count
        if self._parked:
            self._credit_unpark()

    def _credit_unpark(self) -> None:
        """Wake from parked: the starved-for credit arrived.

        Credits arrive in the network's first phase, before this
        cycle's inject phase: settle through the previous cycle and
        rejoin the active set in time to inject this cycle.
        """
        self._settle(self._clock() - 1)
        self._parked = False
        if self._wake is not None:
            self._wake()

    def inject(self, now: int) -> bool:
        """Try to put one flit on the wire; return True on success."""
        if self._parked:
            # Self-healing for the scan-everything reference path: a
            # parked NI injected by it settles first, then this call
            # ticks the current cycle itself.
            self._settle(now - 1)
            self._parked = False
        if not self._flits:
            return False
        if self._link is None:
            raise RuntimeError(f"{self.name} injects but is not connected")
        if self._credits <= 0:
            self._stall_cycles += 1
            self._flits[0].stall_cycles += 1
            return False
        flit = self._flits.popleft()
        if flit.is_head:
            flit.packet.wire_entry_cycle = now
        # Link.send inlined (one injection per NI per cycle is a hot
        # path at saturation); the call is kept only for standalone
        # links and to raise the protocol error on a double send.
        link = self._link
        if link.wheel is None:
            link.send(flit, now)
        else:
            if link._last_send_cycle == now:
                link.send(flit, now)  # raises the protocol error
            link._last_send_cycle = now
            link.wheel[(now + link.delay) % link.wheel_size].append(
                (link, flit)
            )
            link.wire_count += 1
            link.flits_carried += 1
        self._credits -= 1
        self.injected_flits += 1
        if flit.is_tail:
            self.injected_packets += 1
        if self._drain_level is not None and len(self._flits) == (
            self._drain_level - 1
        ):
            # The source queue just dropped below the generator's
            # backpressure limit: fire the one-shot drain watch.
            callback = self._on_drain
            self._drain_level = None
            self._on_drain = None
            callback(now)
        return True

    # ------------------------------------------------------------------
    # Parking (driven by the network's event-driven step)
    # ------------------------------------------------------------------
    def _park(self, now: int) -> None:
        """Leave the active set after a credit-starved inject at ``now``.

        While parked the head flit and the stall counter would tick
        identically every cycle (credits only arrive through
        :meth:`credit`, flits only leave through :meth:`inject`), so
        the whole stretch settles in one step on wake-up.
        """
        self._parked = True
        self._park_cycle = now

    def _settle(self, until: int) -> None:
        """Account stalls of parked cycles ``park_cycle+1..until``."""
        elapsed = until - self._park_cycle
        if elapsed <= 0:
            return
        self._park_cycle = until
        self._stall_cycles += elapsed
        self._flits[0].stall_cycles += elapsed

    @property
    def stall_cycles(self) -> int:
        """Inject attempts stalled on credits (settled through the
        last emulated cycle, including any still-parked stretch)."""
        if self._parked and self._clock is not None:
            pending = self._clock() - 1 - self._park_cycle
            if pending > 0:
                return self._stall_cycles + pending
        return self._stall_cycles

    def stats_snapshot(self) -> tuple:
        """``(injected_flits, injected_packets, stall_cycles)`` settled
        through the last emulated cycle (windowed-telemetry reading)."""
        return (
            self.injected_flits,
            self.injected_packets,
            self.stall_cycles,
        )

    def watch_drain(
        self, level: int, callback: Callable[[int], None]
    ) -> None:
        """Arm a one-shot callback for the queue dropping below
        ``level`` flits; fired with the cycle of the crossing pop."""
        self._drain_level = level
        self._on_drain = callback

    def purge_pids(self, pids, now: int) -> int:
        """Drop every queued flit of the packets in ``pids`` (fault
        abort); return the number of flits removed.

        A parked stretch settles first so the stall accounting of the
        old head closes before the head changes; the purge then fires
        the generator's drain watch if it crosses the backpressure
        level, and leaves the NI unparked — if it is still
        credit-starved, the next inject attempt re-parks it with
        identical per-cycle accounting.
        """
        flits = self._flits
        if not flits:
            return 0
        keep = [f for f in flits if f.packet.pid not in pids]
        purged = len(flits) - len(keep)
        if not purged:
            return 0
        if self._parked:
            self._settle(now - 1)
            self._parked = False
        flits.clear()
        flits.extend(keep)
        level = self._drain_level
        if level is not None and len(flits) < level:
            callback = self._on_drain
            self._drain_level = None
            self._on_drain = None
            callback(now)
        if keep and self._wake is not None:
            self._wake()
        return purged

    def reset_stats(self) -> None:
        if self._parked and self._clock is not None:
            # Per-flit stall counters survive a statistics reset:
            # settle the parked stretch into them, zero the NI
            # counter, and keep accumulating into the fresh window.
            self._settle(self._clock() - 1)
        self.offered_packets = 0
        self.injected_flits = 0
        self.injected_packets = 0
        self._stall_cycles = 0
        self.peak_queue = len(self._flits)


class ReassemblyBuffer:
    """Receive-side NI: collects flits back into packets.

    Completed packets are handed to ``on_packet(packet, now, flits)``.
    Wormhole switching delivers each packet's flits contiguously and in
    order on the ejection link, but the buffer tolerates interleaving
    (it keys partial packets by packet id) so it also works under
    store-and-forward or multi-link ejection.
    """

    __slots__ = (
        "node",
        "name",  # repro: allow[state-coverage] derived from the node id at construction
        "on_packet",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_partial",
        "_last_pid",  # repro: allow[state-coverage] last-packet diagnostic; not observable by metrics or either kernel
        "_last_flits",  # repro: allow[state-coverage] last-packet diagnostic; not observable by metrics or either kernel
        "received_flits",
        "received_packets",
        "misrouted_flits",
        "aborted_packets",
    )

    def __init__(
        self,
        node: int,
        on_packet: Optional[
            Callable[[Packet, int, List[Flit]], None]
        ] = None,
        name: str = "",
    ) -> None:
        self.node = node
        self.name = name or f"rx{node}"
        self.on_packet = on_packet
        self._partial: Dict[int, List[Flit]] = {}
        # One-packet cache over ``_partial``: wormhole switching
        # delivers each packet's flits contiguously, so the list the
        # previous flit landed in is almost always the one the next
        # flit wants — skipping a dict lookup per ejected flit.
        self._last_pid: Optional[int] = None
        self._last_flits: Optional[List[Flit]] = None
        # Statistics.
        self.received_flits = 0
        self.received_packets = 0
        self.misrouted_flits = 0
        # Partial packets discarded by fault injection, cumulative
        # across the run (not reset with the stats window).
        self.aborted_packets = 0

    def receive(self, flit: Flit, now: int) -> Optional[Packet]:
        """Accept one flit; return the packet if this flit completed it."""
        self.received_flits += 1
        if flit.dst != self.node:
            self.misrouted_flits += 1
            raise RuntimeError(
                f"{self.name} received flit for node {flit.dst}: the"
                f" routing tables are inconsistent"
            )
        pid = flit.packet.pid
        if pid == self._last_pid:
            flits = self._last_flits
        else:
            flits = self._partial.get(pid)
            if flits is None:
                flits = self._partial[pid] = []
            self._last_pid = pid
            self._last_flits = flits
        flits.append(flit)
        if len(flits) < flit.packet.length:
            return None
        del self._partial[pid]
        self._last_pid = None
        self._last_flits = None
        self.received_packets += 1
        packet = flit.packet
        if self.on_packet is not None:
            self.on_packet(packet, now, flits)
        return packet

    def abort_packets(self, pids) -> List[int]:
        """Discard the partial reassembly state of the packets in
        ``pids`` (fault abort); return the pids actually discarded.

        A wormhole packet whose tail died on a link would otherwise
        hold its partial flit list forever and distort the in-flight
        accounting.
        """
        dead = [pid for pid in self._partial if pid in pids]
        for pid in dead:
            del self._partial[pid]
            if pid == self._last_pid:
                self._last_pid = None
                self._last_flits = None
        self.aborted_packets += len(dead)
        return dead

    @property
    def partial_packets(self) -> int:
        """Packets with some but not all flits received (in flight)."""
        return len(self._partial)

    def stats_snapshot(self) -> tuple:
        """``(received_flits, received_packets)`` — the ejection-side
        counters the windowed telemetry differences."""
        return (self.received_flits, self.received_packets)

    def reset_stats(self) -> None:
        self.received_flits = 0
        self.received_packets = 0
        self.misrouted_flits = 0
