"""Network interfaces.

Slide 10 of the paper: the traffic-generator structure ends in "a
network interface [that] converts a traffic pattern in flits for NoC"
and "can be adapted for any type of NoC".  The TX side here segments
packets into flits and injects them under credit-based flow control; the
RX side reassembles flits into packets and hands completed packets to
whatever receptor device is attached.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.noc.flit import Flit, Packet
from repro.noc.link import Link


class NetworkInterface:
    """Transmit-side NI: packet segmentation plus credit-controlled injection.

    One instance sits between a traffic generator and the input port of
    its local switch.  ``offer`` queues a packet; :meth:`inject` is
    called once per cycle by the network and pushes at most one flit
    onto the injection link when a downstream buffer slot (credit) is
    available.
    """

    __slots__ = (
        "node",
        "name",
        "_flits",
        "_link",
        "_credits",
        "_notify_offer",
        "offered_packets",
        "injected_flits",
        "injected_packets",
        "stall_cycles",
        "peak_queue",
    )

    def __init__(self, node: int, name: str = "") -> None:
        self.node = node
        self.name = name or f"ni{node}"
        self._flits: Deque[Flit] = deque()
        self._link: Optional[Link] = None
        self._credits = 0
        # Event-driven scheduling hook (set by the network): called
        # with the queued flit count on every offer, so the network can
        # bump its in-flight counter and mark this NI active.
        self._notify_offer: Optional[Callable[[int], None]] = None
        # Statistics.
        self.offered_packets = 0
        self.injected_flits = 0
        self.injected_packets = 0
        self.stall_cycles = 0
        self.peak_queue = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, link: Link, credits: int) -> None:
        if self._link is not None:
            raise RuntimeError(f"{self.name} is already connected")
        self._link = link
        self._credits = credits

    # ------------------------------------------------------------------
    # Generator-facing interface
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue ``packet`` for injection (segmented immediately)."""
        self.offered_packets += 1
        self._flits.extend(packet.flits())
        if len(self._flits) > self.peak_queue:
            self.peak_queue = len(self._flits)
        if self._notify_offer is not None:
            self._notify_offer(packet.length)

    @property
    def pending_flits(self) -> int:
        """Flits queued but not yet on the wire (source queue depth)."""
        return len(self._flits)

    @property
    def idle(self) -> bool:
        return not self._flits

    # ------------------------------------------------------------------
    # Network-facing interface
    # ------------------------------------------------------------------
    def credit(self, count: int = 1) -> None:
        self._credits += count

    def inject(self, now: int) -> bool:
        """Try to put one flit on the wire; return True on success."""
        if not self._flits:
            return False
        if self._link is None:
            raise RuntimeError(f"{self.name} injects but is not connected")
        if self._credits <= 0:
            self.stall_cycles += 1
            self._flits[0].stall_cycles += 1
            return False
        flit = self._flits.popleft()
        if flit.is_head:
            flit.packet.wire_entry_cycle = now
        self._link.send(flit, now)
        self._credits -= 1
        self.injected_flits += 1
        if flit.is_tail:
            self.injected_packets += 1
        return True

    def reset_stats(self) -> None:
        self.offered_packets = 0
        self.injected_flits = 0
        self.injected_packets = 0
        self.stall_cycles = 0
        self.peak_queue = len(self._flits)


class ReassemblyBuffer:
    """Receive-side NI: collects flits back into packets.

    Completed packets are handed to ``on_packet(packet, now, flits)``.
    Wormhole switching delivers each packet's flits contiguously and in
    order on the ejection link, but the buffer tolerates interleaving
    (it keys partial packets by packet id) so it also works under
    store-and-forward or multi-link ejection.
    """

    __slots__ = (
        "node",
        "name",
        "on_packet",
        "_partial",
        "received_flits",
        "received_packets",
        "misrouted_flits",
    )

    def __init__(
        self,
        node: int,
        on_packet: Optional[
            Callable[[Packet, int, List[Flit]], None]
        ] = None,
        name: str = "",
    ) -> None:
        self.node = node
        self.name = name or f"rx{node}"
        self.on_packet = on_packet
        self._partial: Dict[int, List[Flit]] = {}
        # Statistics.
        self.received_flits = 0
        self.received_packets = 0
        self.misrouted_flits = 0

    def receive(self, flit: Flit, now: int) -> Optional[Packet]:
        """Accept one flit; return the packet if this flit completed it."""
        self.received_flits += 1
        if flit.dst != self.node:
            self.misrouted_flits += 1
            raise RuntimeError(
                f"{self.name} received flit for node {flit.dst}: the"
                f" routing tables are inconsistent"
            )
        pid = flit.packet.pid
        flits = self._partial.get(pid)
        if flits is None:
            flits = self._partial[pid] = []
        flits.append(flit)
        if len(flits) < flit.packet.length:
            return None
        del self._partial[pid]
        self.received_packets += 1
        packet = flit.packet
        if self.on_packet is not None:
            self.on_packet(packet, now, flits)
        return packet

    @property
    def partial_packets(self) -> int:
        """Packets with some but not all flits received (in flight)."""
        return len(self._partial)

    def reset_stats(self) -> None:
        self.received_flits = 0
        self.received_packets = 0
        self.misrouted_flits = 0
