"""The on-disk checkpoint record: versioned, canonical, content-hashed.

A :class:`Checkpoint` is a pure-data object — the scenario spec that
built the platform plus one JSON-plain ``state`` dict enumerating every
piece of mutable emulation state (see :mod:`repro.checkpoint.capture`
for the enumeration).  Hashing and serialization mirror the conventions
of :class:`~repro.experiments.spec.ScenarioSpec` and
:class:`~repro.experiments.cache.ResultCache`:

* canonical JSON — sorted keys, ``(",", ":")`` separators — so the
  content hash is byte-stable across processes;
* ``content_hash`` — first 16 hex chars of the SHA-256 of the schema +
  spec + state payload, embedded in the file and re-verified on load;
* atomic writes — ``mkstemp`` + ``os.replace``, so a crash mid-save
  never leaves a truncated checkpoint where a good one stood;
* clean errors, never partial reads — truncation, bad JSON, a foreign
  schema version, or a hash mismatch each raise their own
  :mod:`~repro.checkpoint.errors` class before anything is returned.

One deliberate caveat: a checkpoint taken *after an online repair*
embeds the fault report's ``repair_wall_seconds`` (real wall-clock
spent rebuilding route tables), so two checkpoints of the same faulted
run hash differently.  Healthy ramps — the warm-start case — are fully
deterministic: same spec, same cycle, same hash.
"""

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.experiments.spec import ScenarioSpec
from repro.util import canonical_json_bytes

from .errors import (
    CheckpointCorruptError,
    CheckpointSchemaError,
    CheckpointSpecMismatch,
)

__all__ = ["CHECKPOINT_SCHEMA", "Checkpoint", "load_checkpoint"]

#: Bump when the state layout changes incompatibly.  Old files then
#: read as :class:`CheckpointSchemaError`, never as garbage state.
CHECKPOINT_SCHEMA = 1


def _canonical(payload: Any) -> bytes:
    return canonical_json_bytes(payload)


@dataclass(frozen=True)
class Checkpoint:
    """Complete emulation state at one cycle boundary.

    ``state`` is JSON-plain (dicts, lists, ints, strings, None) by
    construction; everything structural is rebuilt from ``spec`` at
    restore time, so the record stays portable across processes.
    """

    spec: ScenarioSpec
    state: Dict[str, Any]

    @property
    def cycle(self) -> int:
        """The cycle boundary this checkpoint was taken at."""
        return self.state["cycle"]

    @property
    def content_hash(self) -> str:
        """16-hex-char SHA-256 over schema, spec and state."""
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "spec": self.spec.to_dict(),
            "state": self.state,
        }
        return hashlib.sha256(_canonical(payload)).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """The full file payload, hash included."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "hash": self.content_hash,
            "spec": self.spec.to_dict(),
            "state": self.state,
        }

    def save(self, path: str) -> str:
        """Atomically write the checkpoint to ``path``.

        Returns the content hash so callers can fold it into cache
        keys without recomputing.
        """
        digest = self.content_hash
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "hash": digest,
            "spec": self.spec.to_dict(),
            "state": self.state,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_canonical(payload))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return digest

    @classmethod
    def from_dict(cls, record: Any, where: str = "checkpoint"
                  ) -> "Checkpoint":
        """Validate a parsed file payload into a :class:`Checkpoint`.

        Raises one of the :mod:`~repro.checkpoint.errors` classes on
        any defect; on success the returned object is fully verified
        (schema, structure, content hash).
        """
        if not isinstance(record, dict):
            raise CheckpointCorruptError(
                f"{where}: expected a JSON object, got"
                f" {type(record).__name__}"
            )
        schema = record.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointSchemaError(
                f"{where}: schema version {schema!r} is not the"
                f" supported version {CHECKPOINT_SCHEMA}"
            )
        for field in ("hash", "spec", "state"):
            if field not in record:
                raise CheckpointCorruptError(
                    f"{where}: missing required field {field!r}"
                )
        if not isinstance(record["state"], dict):
            raise CheckpointCorruptError(
                f"{where}: 'state' must be an object"
            )
        try:
            spec = ScenarioSpec.from_dict(record["spec"])
        except Exception as exc:
            raise CheckpointCorruptError(
                f"{where}: embedded spec does not parse: {exc}"
            ) from exc
        checkpoint = cls(spec=spec, state=record["state"])
        digest = checkpoint.content_hash
        if digest != record["hash"]:
            raise CheckpointCorruptError(
                f"{where}: content hash mismatch — file claims"
                f" {record['hash']!r} but payload hashes to"
                f" {digest!r}; the record was tampered with or"
                f" damaged"
            )
        return checkpoint


def load_checkpoint(path: str,
                    spec: Optional[ScenarioSpec] = None) -> Checkpoint:
    """Read and fully validate a checkpoint file.

    When ``spec`` is given, the embedded spec must hash to the same
    scenario key — resuming under a different scenario raises
    :class:`CheckpointSpecMismatch` naming both hashes.  Every failure
    raises before anything is returned; there are no partial loads.
    """
    where = os.path.basename(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointCorruptError(
            f"{where}: cannot read checkpoint: {exc}"
        ) from exc
    try:
        record = json.loads(raw)
    except ValueError as exc:
        raise CheckpointCorruptError(
            f"{where}: not valid JSON (truncated or damaged): {exc}"
        ) from exc
    checkpoint = Checkpoint.from_dict(record, where=where)
    if spec is not None and checkpoint.spec.key != spec.key:
        raise CheckpointSpecMismatch(
            expected_key=spec.key,
            found_key=checkpoint.spec.key,
            where=where,
        )
    return checkpoint
