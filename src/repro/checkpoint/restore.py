"""Restore: rebuild a platform that resumes bit-identically.

``restore(checkpoint)`` builds a *fresh* platform from the embedded
spec (same constructor path as a cold run, so all structure, hooks and
closures are wired exactly as ``build_platform`` wires them), then
overlays the captured mutable state in dependency order:

1. structural cross-checks (component counts, wheel geometry) — any
   drift between the spec's platform and the snapshot is a clean
   :class:`CheckpointError`, never a partial restore;
2. the packet registry: each pid's :class:`Packet` is materialized
   once and its eager flit list shared by every site that references
   ``(pid, seq)`` — so a parked head is *the same object* as the
   FIFO head it froze, exactly as in the original run;
3. links, switches (FIFOs, per-input routes and park records, output
   credits/locks, arbiter rotation, wake lists), NIs, reassembly
   partials, the delivery wheels (credit entries resolved to the new
   platform's structural hook tuples *before* fault re-application
   detaches any), active lists, generators + traffic-model caches +
   LFSR registers, platform poll caches, receptor analyzers;
4. fault state: a new :class:`FaultInjector` on the new platform,
   cursor/report/flaky/recovery state overlaid, downed links'
   credit hooks detached through the saved-credit store, and — when
   any applied event repaired routes — the route tables rebuilt with
   the current dead-pair avoid set through the injector's own build
   path (family tables, deadlock re-vet, up*/down* fallback) and
   hot-swapped without touching the restored per-input route cache;
5. telemetry: a new :class:`WindowedMetrics` with the captured
   boundaries, closed records, and the stored last-boundary base
   reading (the checkpoint cycle can fall mid-window, so the base is
   state, not something to recompute);
6. the global packet-id allocator, repositioned so future pids
   continue the original sequence.

The returned engine carries the injector (if any) so
:meth:`EmulationEngine.run` resumes the fault schedule mid-flight
instead of restarting it.
"""

import itertools
from typing import Any, Dict, List, Tuple

from repro.core.engine import EmulationEngine
from repro.core.platform import EmulationPlatform, build_platform
from repro.faults.report import (
    FaultEventRecord,
    FaultReport,
    FaultWindow,
)
from repro.faults.schedule import FaultSchedule
from repro.noc import flit as flit_mod
from repro.noc.deadlock import is_deadlock_free
from repro.noc.flit import Packet
from repro.noc.routing import build_updown_tables
from repro.telemetry import WindowedMetrics
from repro.telemetry.windows import WindowRecord

from .errors import CheckpointError
from .record import Checkpoint

__all__ = ["restore"]


class _PacketRegistry:
    """pid -> materialized flit list, each packet built exactly once."""

    def __init__(self, records: List[list]):
        self._records = {rec[0]: rec for rec in records}
        self._flits: Dict[int, list] = {}

    def flit(self, pid: int, seq: int, stall: int = None):
        flits = self._flits.get(pid)
        if flits is None:
            rec = self._records.get(pid)
            if rec is None:
                raise CheckpointError(
                    f"state references unknown packet pid {pid}"
                )
            packet = Packet(
                src=rec[1],
                dst=rec[2],
                length=rec[3],
                injection_cycle=rec[4],
                wire_entry_cycle=rec[5],
                burst_id=rec[6],
                pid=pid,
            )
            flits = self._flits[pid] = packet.flits()
        try:
            flit = flits[seq]
        except IndexError:
            raise CheckpointError(
                f"packet {pid} has no flit seq {seq}"
            ) from None
        if stall is not None:
            flit.stall_cycles = stall
        return flit


def _check(condition: bool, what: str) -> None:
    if not condition:
        raise CheckpointError(
            f"checkpoint does not match the platform built from its"
            f" spec: {what}"
        )


def _restore_histogram(hist, state: Dict[str, Any]) -> None:
    hist.counts[:] = state["counts"]
    hist.overflow = state["overflow"]
    hist.underflow = state["underflow"]
    hist.total = state["total"]
    hist._sum = state["sum"]
    hist._min = state["min"]
    hist._max = state["max"]


def _restore_switch(sw, state: Dict[str, Any],
                    registry: _PacketRegistry) -> None:
    _check(len(state["inputs"]) == len(sw.inputs),
           f"switch {sw.switch_id} input count")
    _check(len(state["outputs"]) == len(sw._outputs),
           f"switch {sw.switch_id} output count")
    for i, in_state in enumerate(state["inputs"]):
        buf = sw.inputs[i]
        buf._fifo.extend(
            registry.flit(pid, seq, stall)
            for pid, seq, stall in in_state["fifo"]
        )
        if buf._pid_counts is not None:
            counts = buf._pid_counts
            for flit in buf._fifo:
                pid = flit.packet.pid
                counts[pid] = counts.get(pid, 0) + 1
        (buf.total_pushes, buf.total_pops, buf.peak_occupancy,
         buf.occupancy_cycles, buf.full_cycles,
         buf._sampled_cycles) = in_state["stats"]
        route = in_state["route"]
        sw._input_route[i] = route
        sw._input_out[i] = (
            None if route is None else sw._outputs[route]
        )
        sw._in_active[i] = in_state["active"]
        sw._in_listed[i] = in_state["listed"]
        sw._in_parked[i] = in_state["parked"]
        sw._in_park_cycle[i] = in_state["park_cycle"]
        sw._in_park_credit[i] = in_state["park_credit"]
        head = in_state["park_head"]
        sw._in_park_head[i] = (
            None if head is None else registry.flit(head[0], head[1])
        )
    sw._scan[:] = [sw._in_tuples[i] for i in state["scan"]]
    sw._parked_count = state["parked_count"]
    sw._active = state["active"]
    sw._buffered = state["buffered"]
    sw.flits_forwarded = state["flits_forwarded"]
    sw._blocked_flit_cycles = state["blocked_flit_cycles"]
    sw._credit_stall_cycles = state["credit_stall_cycles"]
    for port, out_state in enumerate(state["outputs"]):
        out = sw._outputs[port]
        out.credits = out_state["credits"]
        out.lock = out_state["lock"]
        out.lock_pid = out_state["lock_pid"]
        out.flits_sent = out_state["flits_sent"]
        out.credit_waiters[:] = out_state["credit_waiters"]
        out.lock_waiters[:] = out_state["lock_waiters"]
        arb = sw.arbiters[port]
        arb_state = out_state["arbiter"]
        arb.grants = arb_state["grants"]
        arb.grant_counts[:] = arb_state["grant_counts"]
        if "pointer" in arb_state:
            arb._pointer = arb_state["pointer"]
        if "beats" in arb_state:
            arb._beats = [list(row) for row in arb_state["beats"]]


def _restore_model(model, state: Dict[str, Any],
                   rng_state: int) -> None:
    kind = state["kind"]
    expected = {
        "uniform": "UniformTraffic",
        "poisson": "PoissonTraffic",
        "burst": "BurstTraffic",
        "onoff": "OnOffTraffic",
        "trace": "TraceTraffic",
    }.get(kind)
    _check(type(model).__name__ == expected,
           f"traffic model family {kind!r}")
    if kind == "uniform" or kind == "poisson":
        model._next_emission = state["next_emission"]
    elif kind == "burst":
        model._state = state["state"]
        model._next_slot = state["next_slot"]
        model._burst_id = state["burst_id"]
        model._burst_dst = state["burst_dst"]
    elif kind == "onoff":
        model._next_emission = state["next_emission"]
        model._in_burst = state["in_burst"]
        model._burst_id = state["burst_id"]
        model._burst_dst = state["burst_dst"]
    else:  # trace
        model._cursor = state["cursor"]
    model.rng._lfsr.state = rng_state


def _restore_receptor(receptor, state: Dict[str, Any]) -> None:
    receptor.packets_received = state["packets_received"]
    receptor.flits_received = state["flits_received"]
    receptor.first_cycle = state["first_cycle"]
    receptor.last_cycle = state["last_cycle"]
    receptor.enabled = state["enabled"]
    if "latency" in state:
        lat_state = state["latency"]
        lat = receptor.latency
        lat.count = lat_state["count"]
        lat.total_latency = lat_state["total_latency"]
        lat.min_latency = lat_state["min_latency"]
        lat.max_latency = lat_state["max_latency"]
        _restore_histogram(lat.histogram, lat_state["histogram"])
        lat.total_queueing = lat_state["total_queueing"]
        lat.total_network = lat_state["total_network"]
        lat.decomposed_count = lat_state["decomposed_count"]
        lat._burst_acc.clear()
        for burst, queueing, count in lat_state["burst_acc"]:
            lat._burst_acc[int(burst)][:] = [queueing, count]
        con_state = state["congestion"]
        con = receptor.congestion
        con.packets = con_state["packets"]
        con.flits = con_state["flits"]
        con.total_stall_cycles = con_state["total_stall_cycles"]
        con.max_packet_stall = con_state["max_packet_stall"]
        con.congested_packets = con_state["congested_packets"]
    if "length_histogram" in state:
        _restore_histogram(
            receptor.length_histogram, state["length_histogram"]
        )
        _restore_histogram(
            receptor.gap_histogram, state["gap_histogram"]
        )
        _restore_histogram(
            receptor.source_histogram, state["source_histogram"]
        )
        receptor._previous_arrival = state["previous_arrival"]


def _restore_injector(injector, fstate: Dict[str, Any],
                      platform: EmulationPlatform) -> None:
    network = platform.network
    schedule = injector.schedule
    injector._next_idx = fstate["next_idx"]
    injector._dead_pairs = {
        (a, b) for a, b in fstate["dead_pairs"]
    }
    injector._boundary_cycle = fstate["boundary_cycle"]
    injector._boundary_packets = fstate["boundary_packets"]
    injector._boundary_label = fstate["boundary_label"]

    rstate = fstate["report"]
    report = injector.report
    report.dropped_flits = rstate["dropped_flits"]
    report.dropped_packets = rstate["dropped_packets"]
    report.per_link_drops.clear()
    report.per_link_drops.update(rstate["per_link_drops"])
    report.events[:] = [
        FaultEventRecord(
            cycle=rec["cycle"],
            kind=rec["kind"],
            detail=rec["detail"],
            dropped_flits=rec["dropped_flits"],
            dropped_packets=rec["dropped_packets"],
            repaired=rec["repaired"],
            repair_wall_seconds=rec["repair_wall_seconds"],
            recovery_cycles=rec["recovery_cycles"],
        )
        for rec in rstate["events"]
    ]
    report.windows[:] = [
        FaultWindow(label=label, start=start, end=end,
                    packets_received=packets)
        for label, start, end, packets in rstate["windows"]
    ]
    report.degraded = rstate["degraded"]
    report.degraded_reason = rstate["degraded_reason"]

    # Detach the credit hooks of downed links exactly as link_down
    # did, through the saved-credit store, so link_up can re-baseline.
    injector._saved_credit = {}
    for sw_id, port in fstate["saved_credit_keys"]:
        sw = network.switches[sw_id]
        hook = sw._input_credit[port]
        _check(hook is not None,
               f"saved credit hook ({sw_id}, {port}) missing")
        injector._saved_credit[(sw_id, port)] = hook
        sw._input_credit[port] = None

    # Flaky windows and in-progress recovery probes reference report
    # records by index; the event's link list and drop threshold are
    # derived exactly as _apply_flaky derives them.
    injector._flaky = []
    for event_idx, record_idx in fstate["flaky"]:
        event = schedule.events[event_idx]
        links = list(network.switch_links[(event.a, event.b)])
        threshold = int(event.drop_p * 2**32)
        injector._flaky.append(
            (event, links, threshold, report.events[record_idx])
        )
    injector._awaiting = [
        (report.events[record_idx], packets_then)
        for record_idx, packets_then in fstate["awaiting"]
    ]

    if fstate["repaired"]:
        # Rebuild the repaired tables with the *current* avoid set —
        # the same build + deadlock re-vet + up*/down* fallback
        # _repair runs — and hot-swap.  The per-input cached routes
        # were restored verbatim (they already reflect every
        # post-repair decision), so no cache clearing and no wakes.
        topo = platform.topology
        avoid = frozenset(injector._dead_pairs)
        routing = injector._build_tables(avoid)
        destinations = injector._destinations()
        if destinations and not is_deadlock_free(
            topo, routing, sorted(destinations)
        ):
            routing = build_updown_tables(topo, avoid_links=avoid)
        network.routing = routing
        for sw in network.switches:
            sw.routing = routing
            sw._compile_routes(topo.n_nodes)


def restore(
    checkpoint: Checkpoint,
) -> Tuple[EmulationPlatform, EmulationEngine]:
    """Rebuild ``(platform, engine)`` resuming at ``checkpoint.cycle``.

    The continuation is bit-identical to the uninterrupted run on both
    kernels: drive ``engine.run(...)`` or step
    ``platform.step_reference()`` manually, exactly as you would have
    driven the original.
    """
    spec = checkpoint.spec
    state = checkpoint.state
    platform = build_platform(spec.to_platform_config())
    network = platform.network

    _check(len(state["switches"]) == len(network.switches),
           "switch count")
    _check(len(state["nis"]) == len(network.nis), "NI count")
    _check(len(state["rx"]) == len(network.rx), "rx count")
    _check(len(state["links"]) == len(network.links), "link count")
    _check(len(state["generators"]) == len(platform.generators),
           "generator count")
    _check(len(state["receptors"]) == len(platform.receptors),
           "receptor count")
    net_state = state["network"]
    _check(net_state["wheel_size"] == network._wheel_size,
           "delivery wheel size")

    registry = _PacketRegistry(state["packets"])
    cycle = state["cycle"]
    network.cycle = cycle

    for link, link_state in zip(network.links, state["links"]):
        link.flits_carried = link_state["flits_carried"]
        link.flits_dropped = link_state["flits_dropped"]
        link.stats_since = link_state["stats_since"]
        link.down = link_state["down"]
        link._last_send_cycle = link_state["last_send_cycle"]
        link.wire_count = link_state["wire_count"]

    for sw, sw_state in zip(network.switches, state["switches"]):
        _restore_switch(sw, sw_state, registry)

    for ni, ni_state in zip(network.nis, state["nis"]):
        ni._flits.extend(
            registry.flit(pid, seq, stall)
            for pid, seq, stall in ni_state["flits"]
        )
        ni._credits = ni_state["credits"]
        ni._active = ni_state["active"]
        ni._parked = ni_state["parked"]
        ni._park_cycle = ni_state["park_cycle"]
        ni.offered_packets = ni_state["offered_packets"]
        ni.injected_flits = ni_state["injected_flits"]
        ni.injected_packets = ni_state["injected_packets"]
        ni._stall_cycles = ni_state["stall_cycles"]
        ni.peak_queue = ni_state["peak_queue"]

    for rx, rx_state in zip(network.rx, state["rx"]):
        for pid, flits in rx_state["partial"]:
            rx._partial[pid] = [
                registry.flit(pid, seq, stall)
                for seq, stall in flits
            ]
        rx.received_flits = rx_state["received_flits"]
        rx.received_packets = rx_state["received_packets"]
        rx.misrouted_flits = rx_state["misrouted_flits"]
        rx.aborted_packets = rx_state["aborted_packets"]

    # Delivery wheels: resolve credit entries against the freshly
    # wired hooks *before* fault restoration detaches any of them.
    size = network._wheel_size
    for offset, entries in enumerate(net_state["flit_wheel"]):
        slot = network._flit_wheel[(cycle + offset) % size]
        slot.extend(
            (network.links[link_idx], registry.flit(pid, seq, stall))
            for link_idx, pid, seq, stall in entries
        )
    for offset, entries in enumerate(net_state["credit_wheel"]):
        slot = network._credit_wheel[(cycle + offset) % size]
        for sw_id, port in entries:
            hook = network.switches[sw_id]._input_credit[port]
            _check(hook is not None,
                   f"credit entry ({sw_id}, {port}) not wired")
            slot.append(hook[1])

    network._in_flight_flits = net_state["in_flight_flits"]
    active_ids = set(net_state["active_switches"])
    network._active_switches[:] = [
        network.switches[i] for i in net_state["active_switches"]
    ]
    for sw in network.switches:
        _check(sw._active == (sw.switch_id in active_ids),
               f"switch {sw.switch_id} active-flag consistency")
    active_nodes = set(net_state["active_nis"])
    network._active_nis[:] = [
        network.nis[node] for node in net_state["active_nis"]
    ]
    for ni in network.nis:
        _check(ni._active == (ni.node in active_nodes),
               f"NI {ni.node} active-flag consistency")

    for gen, gen_state in zip(platform.generators,
                              state["generators"]):
        gen.enabled = gen_state["enabled"]
        gen._silent_until = gen_state["silent_until"]
        gen._bp_since = gen_state["bp_since"]
        gen.packets_sent = gen_state["packets_sent"]
        gen.flits_sent = gen_state["flits_sent"]
        gen._backpressure_cycles = gen_state["backpressure_cycles"]
        _restore_model(
            gen.model, gen_state["model"], gen_state["rng_state"]
        )
        if gen._bp_since is not None:
            # The original run had a one-shot drain watch armed; the
            # NI still holds >= queue_limit flits, so re-arming
            # cannot fire early.
            gen.ni.watch_drain(gen.queue_limit, gen._on_ni_drain)

    pstate = state["platform"]
    platform._next_gen_poll = pstate["next_gen_poll"]
    platform._gen_next[:] = pstate["gen_next"]
    platform._packets_sent = pstate["packets_sent"]
    platform._packets_received = pstate["packets_received"]

    for receptor, r_state in zip(platform.receptors,
                                 state["receptors"]):
        _restore_receptor(receptor, r_state)

    # --- faults.
    fstate = state["faults"]
    schedule = None
    injector = None
    if fstate is not None:
        schedule = FaultSchedule.from_dict(fstate["schedule"])
        if fstate["injector"] is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(schedule, platform)
            _restore_injector(injector, fstate["injector"], platform)
    elif spec.faults is not None:
        schedule = spec.faults

    # --- telemetry (base snapshot last: deltas continue from the
    # fully restored counters).
    telemetry = None
    tstate = state["telemetry"]
    if tstate is not None:
        telemetry = WindowedMetrics(
            platform, tstate["window_cycles"]
        )
        telemetry._started = tstate["started"]
        telemetry._start = tstate["start"]
        telemetry._boundary = tstate["boundary"]
        telemetry.records[:] = [
            WindowRecord(
                index=rec["index"],
                start=rec["start"],
                end=rec["end"],
                injected_flits=rec["injected_flits"],
                injected_packets=rec["injected_packets"],
                ejected_flits=rec["ejected_flits"],
                ejected_packets=rec["ejected_packets"],
                forwarded_flits=rec["forwarded_flits"],
                blocked_flit_cycles=rec["blocked_flit_cycles"],
                credit_stall_cycles=rec["credit_stall_cycles"],
                ni_stall_cycles=rec["ni_stall_cycles"],
                backpressure_cycles=rec["backpressure_cycles"],
                fault_dropped_flits=rec["fault_dropped_flits"],
                switch_forwarded=tuple(rec["switch_forwarded"]),
                switch_blocked=tuple(rec["switch_blocked"]),
                switch_credit_stalls=tuple(
                    rec["switch_credit_stalls"]
                ),
                link_flits=dict(rec["link_flits"]),
                switch_buffered=tuple(rec["switch_buffered"]),
                parked_inputs=rec["parked_inputs"],
                in_flight_flits=rec["in_flight_flits"],
            )
            for rec in tstate["records"]
        ]
        base = tstate["base"]
        if base is not None:
            flat, sw_stats, link_stats = base
            telemetry._base = tuple(flat) + (
                tuple(tuple(sw) for sw in sw_stats),
                tuple(tuple(link) for link in link_stats),
            )

    engine = EmulationEngine(
        platform, faults=schedule, telemetry=telemetry
    )
    engine._injector = injector

    # Future packets continue the original pid sequence (pids feed
    # the flaky-drop RNG and the multipath hash, so this is part of
    # bit-identity, not cosmetics).
    flit_mod._packet_ids = itertools.count(state["next_pid"])

    return platform, engine
