"""Checkpoint/restore: freeze a run at a cycle boundary, resume it
bit-identically later — in this process, another one, or another
machine.

The three public operations:

* :func:`snapshot` — capture the complete mutable state of a platform
  (and its engine's fault/telemetry state) as a :class:`Checkpoint`;
* :meth:`Checkpoint.save` / :func:`load_checkpoint` — versioned,
  canonical, content-hashed disk round-trip with ResultCache-style
  corruption semantics (clean errors, never partial restores);
* :func:`restore` — rebuild ``(platform, engine)`` whose continuation
  is bit-identical to the uninterrupted run on both kernels.

Built on top: warm-started sweeps (ramp a shared prefix once, fork one
restore per sweep point — see :mod:`repro.experiments.runner`) and
crash-safe long runs (``repro run --checkpoint-every``).

Crash safety composes across layers: ``--checkpoint-every`` protects
*one long run* at cycle granularity, while the sweep journal
(:class:`repro.experiments.resilience.SweepJournal`, ``repro batch
--resume-journal``) protects a *whole sweep* at scenario granularity
— after a process-level crash the journal skips finished scenarios
and a per-scenario checkpoint resumes the interrupted one.
"""

from .capture import snapshot
from .errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointSchemaError,
    CheckpointSpecMismatch,
)
from .record import CHECKPOINT_SCHEMA, Checkpoint, load_checkpoint
from .restore import restore

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointSchemaError",
    "CheckpointSpecMismatch",
    "load_checkpoint",
    "restore",
    "snapshot",
]
