"""Snapshot: enumerate every piece of mutable emulation state.

``snapshot(platform, spec, engine=None)`` walks the platform at a
cycle boundary — after a ``Network.step`` / ``step_reference`` has
completed, before the next one begins — and records everything the
next cycle's behaviour depends on, as a JSON-plain dict:

* the clock and the global packet-id allocator position;
* every packet still alive anywhere (buffers, NI queues, wire wheels,
  park heads, reassembly partials), by pid, with per-flit stall
  deltas;
* per-switch input FIFOs, buffer statistics, cached per-input route
  decisions, the per-input park records *raw* (park cycle, frozen
  head, credit-vs-lock wait) — parked settlement state is never
  settled by observation here, so a snapshot is invisible to the
  stall accounting;
* per-output credits, wormhole locks (``lock`` / ``lock_pid``),
  arbiter rotation state, and the persistent credit/lock wake lists
  verbatim (stale entries included — the wake paths tolerate them and
  the reference kernel self-heals, so fidelity beats tidiness);
* the flit and credit delivery wheels, slot by slot relative to the
  current cycle (flit entries as ``(link index, pid, seq)``, credit
  entries as the ``(switch, input port)`` coordinates of the
  downstream input whose structural entry tuple they are);
* NI queues and park state, reassembly partials in arrival order,
  per-link counters and the double-send guard;
* every traffic model's emission caches and its LFSR register, the
  generator poll caches (``_silent_until``, backpressure park), and
  the platform's generator poll schedule;
* receptor analyzers (histograms, latency decomposition incl. the
  per-burst accumulator, congestion counters);
* the fault injector's cursor, dead-pair set, saved credit hooks,
  flaky windows, in-progress recovery probes and the full report —
  plus the fault schedule itself, so a resume does not depend on the
  caller re-supplying it;
* telemetry window boundaries and the closed window records.

The snapshot *must* happen at a cycle boundary: mid-phase transients
(arbitration requests) are asserted empty rather than serialized.
"""

from typing import Any, Dict, List, Optional

from repro.core.platform import EmulationPlatform
from repro.experiments.spec import ScenarioSpec
from repro.traffic.burst import BurstTraffic
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.poisson import PoissonTraffic
from repro.traffic.trace import TraceTraffic
from repro.traffic.uniform import UniformTraffic

from .errors import CheckpointError
from .record import Checkpoint

__all__ = ["snapshot"]


def _flit_ref(flit) -> List[int]:
    return [flit.packet.pid, flit.seq, flit.stall_cycles]


def _collect_packet(packets: Dict[int, Any], flit) -> None:
    packets.setdefault(flit.packet.pid, flit.packet)


def _histogram_state(hist) -> Dict[str, Any]:
    return {
        "counts": list(hist.counts),
        "overflow": hist.overflow,
        "underflow": hist.underflow,
        "total": hist.total,
        "sum": hist._sum,
        "min": hist._min,
        "max": hist._max,
    }


def _model_state(model) -> Dict[str, Any]:
    """The per-family emission caches of one traffic model."""
    if isinstance(model, UniformTraffic):
        return {"kind": "uniform", "next_emission": model._next_emission}
    if isinstance(model, PoissonTraffic):
        return {"kind": "poisson", "next_emission": model._next_emission}
    if isinstance(model, BurstTraffic):
        return {
            "kind": "burst",
            "state": model._state,
            "next_slot": model._next_slot,
            "burst_id": model._burst_id,
            "burst_dst": model._burst_dst,
        }
    if isinstance(model, OnOffTraffic):
        return {
            "kind": "onoff",
            "next_emission": model._next_emission,
            "in_burst": model._in_burst,
            "burst_id": model._burst_id,
            "burst_dst": model._burst_dst,
        }
    if isinstance(model, TraceTraffic):
        return {"kind": "trace", "cursor": model._cursor}
    raise CheckpointError(
        f"cannot checkpoint traffic model"
        f" {type(model).__name__}: no state enumeration registered"
        f" for this family"
    )


def _switch_state(sw, packets: Dict[int, Any]) -> Dict[str, Any]:
    if sw._req_ports:
        raise CheckpointError(
            f"switch {sw.switch_id} has pending arbitration requests;"
            f" snapshot only at a cycle boundary"
        )
    inputs = []
    for i, buf in enumerate(sw.inputs):
        for flit in buf._fifo:
            _collect_packet(packets, flit)
        head = sw._in_park_head[i]
        if head is not None:
            _collect_packet(packets, head)
        inputs.append({
            "fifo": [_flit_ref(f) for f in buf._fifo],
            "stats": [
                buf.total_pushes,
                buf.total_pops,
                buf.peak_occupancy,
                buf.occupancy_cycles,
                buf.full_cycles,
                buf._sampled_cycles,
            ],
            "route": sw._input_route[i],
            "active": sw._in_active[i],
            "listed": sw._in_listed[i],
            "parked": sw._in_parked[i],
            "park_cycle": sw._in_park_cycle[i],
            "park_credit": sw._in_park_credit[i],
            "park_head": (
                None if head is None
                else [head.packet.pid, head.seq]
            ),
        })
    outputs = []
    for port, out in enumerate(sw._outputs):
        if out.requests:
            raise CheckpointError(
                f"switch {sw.switch_id} output {port} has pending"
                f" requests; snapshot only at a cycle boundary"
            )
        arb = sw.arbiters[port]
        arb_state: Dict[str, Any] = {
            "grants": arb.grants,
            "grant_counts": list(arb.grant_counts),
        }
        pointer = getattr(arb, "_pointer", None)
        if pointer is not None:
            arb_state["pointer"] = pointer
        beats = getattr(arb, "_beats", None)
        if beats is not None:
            arb_state["beats"] = [list(row) for row in beats]
        outputs.append({
            "credits": out.credits,
            "lock": out.lock,
            "lock_pid": out.lock_pid,
            "flits_sent": out.flits_sent,
            "credit_waiters": list(out.credit_waiters),
            "lock_waiters": list(out.lock_waiters),
            "arbiter": arb_state,
        })
    return {
        "active": sw._active,
        "buffered": sw._buffered,
        "flits_forwarded": sw.flits_forwarded,
        "blocked_flit_cycles": sw._blocked_flit_cycles,
        "credit_stall_cycles": sw._credit_stall_cycles,
        "parked_count": sw._parked_count,
        "scan": [entry[0] for entry in sw._scan],
        "inputs": inputs,
        "outputs": outputs,
    }


def _receptor_state(receptor) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "packets_received": receptor.packets_received,
        "flits_received": receptor.flits_received,
        "first_cycle": receptor.first_cycle,
        "last_cycle": receptor.last_cycle,
        "enabled": receptor.enabled,
    }
    latency = getattr(receptor, "latency", None)
    if latency is not None:  # trace-driven
        state["latency"] = {
            "count": latency.count,
            "total_latency": latency.total_latency,
            "min_latency": latency.min_latency,
            "max_latency": latency.max_latency,
            "histogram": _histogram_state(latency.histogram),
            "total_queueing": latency.total_queueing,
            "total_network": latency.total_network,
            "decomposed_count": latency.decomposed_count,
            "burst_acc": [
                [burst, acc[0], acc[1]]
                for burst, acc in latency._burst_acc.items()
            ],
        }
        congestion = receptor.congestion
        state["congestion"] = {
            "packets": congestion.packets,
            "flits": congestion.flits,
            "total_stall_cycles": congestion.total_stall_cycles,
            "max_packet_stall": congestion.max_packet_stall,
            "congested_packets": congestion.congested_packets,
        }
    if getattr(receptor, "length_histogram", None) is not None:
        state["length_histogram"] = _histogram_state(
            receptor.length_histogram
        )
        state["gap_histogram"] = _histogram_state(
            receptor.gap_histogram
        )
        state["source_histogram"] = _histogram_state(
            receptor.source_histogram
        )
        state["previous_arrival"] = receptor._previous_arrival
    return state


def _injector_state(injector, network) -> Dict[str, Any]:
    schedule = injector.schedule
    event_index = {
        id(event): idx for idx, event in enumerate(schedule.events)
    }
    record_index = {
        id(rec): idx for idx, rec in enumerate(injector.report.events)
    }
    report = injector.report
    return {
        "next_idx": injector._next_idx,
        "dead_pairs": sorted(
            [a, b] for a, b in injector._dead_pairs
        ),
        "saved_credit_keys": sorted(
            [sw_id, port]
            for sw_id, port in injector._saved_credit
        ),
        "boundary_cycle": injector._boundary_cycle,
        "boundary_packets": injector._boundary_packets,
        "boundary_label": injector._boundary_label,
        "flaky": [
            [event_index[id(event)], record_index[id(rec)]]
            for event, _links, _threshold, rec in injector._flaky
        ],
        "awaiting": [
            [record_index[id(rec)], packets_then]
            for rec, packets_then in injector._awaiting
        ],
        "repaired": any(rec.repaired for rec in report.events),
        "report": {
            "dropped_flits": report.dropped_flits,
            "dropped_packets": report.dropped_packets,
            "per_link_drops": dict(report.per_link_drops),
            "events": [
                {
                    "cycle": rec.cycle,
                    "kind": rec.kind,
                    "detail": rec.detail,
                    "dropped_flits": rec.dropped_flits,
                    "dropped_packets": rec.dropped_packets,
                    "repaired": rec.repaired,
                    "repair_wall_seconds": rec.repair_wall_seconds,
                    "recovery_cycles": rec.recovery_cycles,
                }
                for rec in report.events
            ],
            "windows": [
                [w.label, w.start, w.end, w.packets_received]
                for w in report.windows
            ],
            "degraded": report.degraded,
            "degraded_reason": report.degraded_reason,
        },
    }


def snapshot(
    platform: EmulationPlatform,
    spec: ScenarioSpec,
    engine=None,
) -> Checkpoint:
    """Capture the complete emulation state at the current cycle.

    ``spec`` must be the scenario the platform was built from (its
    ``to_platform_config()`` is what ``restore`` rebuilds); it is
    embedded in the record and hash-checked on resume.  Pass the
    :class:`~repro.core.engine.EmulationEngine` driving the run
    whenever faults or telemetry are in play — their live state (the
    injector and the windowed collector) lives on the engine, not the
    platform.

    Raises :class:`CheckpointError` when the platform is not at a
    clean cycle boundary or holds state the checkpoint layer does not
    model (packet-record mode, an unknown traffic-model family, a
    mid-run faulted platform snapshotted without its engine).
    """
    network = platform.network
    cycle = network.cycle
    packets: Dict[int, Any] = {}

    injector = getattr(engine, "_injector", None) if engine else None
    schedule = engine.faults if engine is not None else spec.faults
    if engine is None and spec.faults is not None and cycle > 0:
        raise CheckpointError(
            "platform has advanced under a fault schedule; pass the"
            " engine so the injector state can be captured"
        )
    telemetry = getattr(engine, "telemetry", None) if engine else None
    if network._tracer is not None:
        raise CheckpointError(
            "a FlitTracer is attached; detach it before snapshotting"
            " (re-attach a fresh tracer to the restored platform —"
            " per-cycle canonical ordering makes the concatenated"
            " streams bit-identical)"
        )
    for gen in platform.generators:
        if gen._records is not None:
            raise CheckpointError(
                "generator packet-record mode (record=True) is not"
                " checkpointable"
            )

    # --- allocator position: the next pid a fresh packet would get.
    from repro.noc import flit as flit_mod
    import itertools

    next_pid = next(flit_mod._packet_ids)
    flit_mod._packet_ids = itertools.count(next_pid)

    # --- switches (also collects packets from fifos/park heads).
    switches = [_switch_state(sw, packets) for sw in network.switches]

    # --- NIs.
    nis = []
    for ni in network.nis:
        for flit in ni._flits:
            _collect_packet(packets, flit)
        nis.append({
            "flits": [_flit_ref(f) for f in ni._flits],
            "credits": ni._credits,
            "active": ni._active,
            "parked": ni._parked,
            "park_cycle": ni._park_cycle,
            "offered_packets": ni.offered_packets,
            "injected_flits": ni.injected_flits,
            "injected_packets": ni.injected_packets,
            "stall_cycles": ni._stall_cycles,
            "peak_queue": ni.peak_queue,
        })

    # --- reassembly buffers (partials in arrival order).
    rx_state = []
    for rx in network.rx:
        partial = []
        for pid, flits in rx._partial.items():
            for flit in flits:
                _collect_packet(packets, flit)
            partial.append(
                [pid, [[f.seq, f.stall_cycles] for f in flits]]
            )
        rx_state.append({
            "partial": partial,
            "received_flits": rx.received_flits,
            "received_packets": rx.received_packets,
            "misrouted_flits": rx.misrouted_flits,
            "aborted_packets": rx.aborted_packets,
        })

    # --- links and the delivery wheels.
    link_index = {id(link): i for i, link in enumerate(network.links)}
    links = []
    for link in network.links:
        if link._in_flight or link._credits_in_flight:
            raise CheckpointError(
                f"link {link.name} carries standalone in-flight"
                f" deques; only network-wired (wheel-fed) links are"
                f" checkpointable"
            )
        links.append({
            "flits_carried": link.flits_carried,
            "flits_dropped": link.flits_dropped,
            "stats_since": link.stats_since,
            "down": link.down,
            "last_send_cycle": link._last_send_cycle,
            "wire_count": link.wire_count,
        })

    size = network._wheel_size
    flit_wheel = []
    for offset in range(size):
        slot = network._flit_wheel[(cycle + offset) % size]
        entries = []
        for link, flit in slot:
            _collect_packet(packets, flit)
            entries.append(
                [link_index[id(link)], flit.packet.pid, flit.seq,
                 flit.stall_cycles]
            )
        flit_wheel.append(entries)

    # Credit entries are structural tuples owned by the downstream
    # input's ``_input_credit`` hook — encode them as that input's
    # coordinates.  Entries a fault injector detached (downed links)
    # are mapped through its saved-credit store.
    entry_coord = {}
    for sw in network.switches:
        for port, hook in enumerate(sw._input_credit):
            if hook is not None:
                entry_coord[id(hook[1])] = (sw.switch_id, port)
    if injector is not None:
        for (sw_id, port), hook in injector._saved_credit.items():
            entry_coord[id(hook[1])] = (sw_id, port)
    credit_wheel = []
    for offset in range(size):
        slot = network._credit_wheel[(cycle + offset) % size]
        entries = []
        for entry in slot:
            coord = entry_coord.get(id(entry))
            if coord is None:
                raise CheckpointError(
                    "credit wheel holds an entry no switch input"
                    " owns; cannot serialize"
                )
            entries.append([coord[0], coord[1]])
        credit_wheel.append(entries)

    # --- generators + traffic models.
    generators = []
    for gen in platform.generators:
        generators.append({
            "enabled": gen.enabled,
            "silent_until": gen._silent_until,
            "bp_since": gen._bp_since,
            "packets_sent": gen.packets_sent,
            "flits_sent": gen.flits_sent,
            "backpressure_cycles": gen._backpressure_cycles,
            "rng_state": gen.model.rng._lfsr.state,
            "model": _model_state(gen.model),
        })

    state: Dict[str, Any] = {
        "cycle": cycle,
        "next_pid": next_pid,
        "packets": sorted(
            [
                pkt.pid,
                pkt.src,
                pkt.dst,
                pkt.length,
                pkt.injection_cycle,
                pkt.wire_entry_cycle,
                pkt.burst_id,
            ]
            for pkt in packets.values()
        ),
        "network": {
            "in_flight_flits": network._in_flight_flits,
            "wheel_size": size,
            "active_switches": [
                sw.switch_id for sw in network._active_switches
            ],
            "active_nis": [ni.node for ni in network._active_nis],
            "flit_wheel": flit_wheel,
            "credit_wheel": credit_wheel,
        },
        "links": links,
        "switches": switches,
        "nis": nis,
        "rx": rx_state,
        "generators": generators,
        "platform": {
            "next_gen_poll": platform._next_gen_poll,
            "gen_next": list(platform._gen_next),
            "packets_sent": platform._packets_sent,
            "packets_received": platform._packets_received,
        },
        "receptors": [
            _receptor_state(r) for r in platform.receptors
        ],
        "faults": None,
        "telemetry": None,
    }

    if schedule is not None and schedule.events:
        state["faults"] = {
            "schedule": schedule.to_dict(),
            "injector": (
                None if injector is None
                else _injector_state(injector, network)
            ),
        }
    if telemetry is not None:
        # The base snapshot is the stored boundary reading (pure
        # data, already settled at its own boundary) — serialized,
        # not recomputed, because the checkpoint cycle can fall
        # mid-window with activity since the last boundary.
        base = telemetry._base
        state["telemetry"] = {
            "window_cycles": telemetry.window_cycles,
            "started": telemetry._started,
            "start": telemetry._start,
            "boundary": telemetry._boundary,
            "base": (
                None if not base else [
                    list(base[:6]),
                    [list(sw) for sw in base[6]],
                    [list(link) for link in base[7]],
                ]
            ),
            "records": [w.to_dict() for w in telemetry.records],
        }

    return Checkpoint(spec=spec, state=state)
