"""Checkpoint error taxonomy.

Every failure mode of the checkpoint layer maps onto a dedicated
exception so callers (CLI, sweep runner, tests) can distinguish "the
file is damaged" from "you are resuming the wrong scenario" without
string matching.  All of them subclass :class:`~repro.core.errors.
EmulationError`, mirroring how :class:`ConfigError` slots into the
platform's error family.

The contract shared by all of them: a raised checkpoint error means
*nothing was mutated*.  ``load`` validates the whole record before
returning and ``restore`` builds a fresh platform, so a failed load or
restore never leaves a half-restored platform behind.
"""

from repro.core.errors import EmulationError

__all__ = [
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointSchemaError",
    "CheckpointSpecMismatch",
]


class CheckpointError(EmulationError):
    """Base class for all checkpoint failures."""


class CheckpointCorruptError(CheckpointError):
    """The file on disk is damaged: truncated, invalid JSON, missing
    required sections, or its content hash does not match the payload.
    """


class CheckpointSchemaError(CheckpointError):
    """The file was written by an incompatible checkpoint schema
    version; it is well-formed but this code cannot interpret it.
    """


class CheckpointSpecMismatch(CheckpointError):
    """The checkpoint belongs to a different scenario than requested.

    Guards against silently resuming the wrong scenario: the error
    names both content hashes so the operator can see *which* two specs
    collided.

    Attributes
    ----------
    expected_key:
        ``ScenarioSpec.key`` of the spec the caller asked to resume.
    found_key:
        ``ScenarioSpec.key`` embedded in the checkpoint file.
    """

    def __init__(self, expected_key: str, found_key: str,
                 where: str = "checkpoint"):
        self.expected_key = expected_key
        self.found_key = found_key
        super().__init__(
            f"{where} was taken from a different scenario: requested"
            f" spec hash {expected_key}, checkpoint carries spec hash"
            f" {found_key}; refusing to resume the wrong scenario"
        )
