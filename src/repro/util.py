"""Shared utilities: the canonical JSON encoder.

Every deterministic record in the repo — scenario specs, result-cache
entries, checkpoints, fault schedules, flit-trace lines, warm-point
cache keys — is serialized through exactly one encoding so that equal
payloads are equal *bytes*: sorted keys, ``(",", ":")`` separators, no
trailing whitespace.  Content hashes (spec keys, checkpoint hashes)
are SHA-256 over that byte form, so the encoder is part of the
repo-wide bit-identity contract, not a style choice.

The determinism lint (:mod:`repro.analysis`) enforces the funnel: any
direct ``json.dumps``/``json.dump`` call outside this module is a
``canonical-json`` finding, so a new record type cannot quietly
introduce a second, subtly different encoding.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["canonical_json", "canonical_json_bytes"]


def canonical_json(payload: Any) -> str:
    """``payload`` as canonical JSON text (sorted keys, no spaces)."""
    # The single sanctioned json.dumps of the source tree; see the
    # module docstring.  # repro: allow[canonical-json] this is the shared encoder itself
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_json_bytes(payload: Any) -> bytes:
    """``payload`` as UTF-8 canonical JSON (the hashed/stored form)."""
    return canonical_json(payload).encode("utf-8")
