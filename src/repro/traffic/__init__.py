"""Traffic generation substrate.

Implements the traffic-generator family of the paper (Slides 9-10):
stochastic models — **uniform** (packet length + inter-packet interval),
**burst** (2-state Markov chain) and **Poisson** ("other models
possible") — plus **trace-driven** generators replaying recorded
traces.  Each generator is parameterised through a bank of registers
("a bench of registers for traffic parameterization [and] random
initialization") and feeds a network interface.
"""

from repro.traffic.base import (
    DestinationChooser,
    FixedDestination,
    HotspotDestination,
    TrafficModel,
    UniformRandomDestination,
    interval_for_load,
)
from repro.traffic.burst import BurstTraffic
from repro.traffic.generator import TrafficGenerator
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.poisson import PoissonTraffic
from repro.traffic.rng import Lfsr32, LfsrRandom
from repro.traffic.trace import (
    Trace,
    TraceRecord,
    TraceTraffic,
    load_trace,
    save_trace,
    synthetic_burst_trace,
    synthetic_mpeg_trace,
)
from repro.traffic.uniform import UniformTraffic

__all__ = [
    "BurstTraffic",
    "DestinationChooser",
    "FixedDestination",
    "HotspotDestination",
    "Lfsr32",
    "LfsrRandom",
    "OnOffTraffic",
    "PoissonTraffic",
    "Trace",
    "TraceRecord",
    "TraceTraffic",
    "TrafficGenerator",
    "TrafficModel",
    "UniformRandomDestination",
    "UniformTraffic",
    "interval_for_load",
    "load_trace",
    "save_trace",
    "synthetic_burst_trace",
    "synthetic_mpeg_trace",
]
