"""The traffic-generator device.

Slide 10 gives the TG structure: a bench of registers (parameterisation
and random initialisation), a packet generator producing the traffic
pattern, and a network interface converting packets into flits.  This
class is the packet-generator stage: it polls a
:class:`~repro.traffic.base.TrafficModel` once per cycle, stamps
emissions into :class:`~repro.noc.flit.Packet` objects and offers them
to the node's network interface.  The register bench lives in
``repro.core.devices``, which wraps this object behind the platform's
memory-mapped configuration interface.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.noc.flit import Packet
from repro.noc.ni import NetworkInterface
from repro.traffic.base import TrafficModel
from repro.traffic.trace import Trace, TraceRecord

#: Sentinel poll cycle for generators that can never act again.
NEVER_POLL = 1 << 62


class TrafficGenerator:
    """Drives one network interface from a traffic model.

    Parameters
    ----------
    node:
        Source node index (stamped as ``packet.src``).
    model:
        The traffic process to poll.
    ni:
        Transmit-side network interface of the node.
    max_packets:
        Stop after this many packets (None = unlimited); the emulation
        software uses this to run "N sent packets" experiments.
    queue_limit:
        Maximum flits allowed in the NI source queue before the
        generator stalls, modelling the finite TG-to-NI FIFO of the
        hardware.  Finite queues are what make the average latency
        saturate at high congestion (Slide 22) instead of growing
        without bound.
    record:
        When True, every emission is also recorded so the run can be
        saved as a trace (:meth:`recorded_trace`).
    """

    def __init__(
        self,
        node: int,
        model: TrafficModel,
        ni: NetworkInterface,
        max_packets: Optional[int] = None,
        queue_limit: int = 64,
        record: bool = False,
    ) -> None:
        if max_packets is not None and max_packets < 0:
            raise ValueError(
                f"max_packets must be >= 0 or None, got {max_packets}"
            )
        if queue_limit < 1:
            raise ValueError(
                f"queue limit must be >= 1 flit, got {queue_limit}"
            )
        self.node = node
        self.model = model
        self.ni = ni  # repro: allow[state-coverage] NI reference; re-attached by the restored platform
        self.max_packets = max_packets  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.queue_limit = queue_limit  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.enabled = True
        # Cycle before which the model is known silent, cached from
        # next_emission_cycle() so idle polls cost one comparison.
        self._silent_until = 0
        # Backpressure parking: when the NI source queue is full, the
        # generator stops being polled entirely (``_bp_since`` holds
        # the last cycle whose backpressure tick is settled) and the
        # NI's drain watch wakes it when the queue drops below
        # ``queue_limit``; the skipped per-cycle ticks settle in bulk.
        # Requires the platform clock (``_clock``) so control
        # operations (disable, budget writes) can settle mid-stretch;
        # without it — standalone generators in unit tests — the
        # generator keeps ticking per polled cycle as before.
        self._bp_since: Optional[int] = None
        self._clock: Optional[Callable[[], int]] = None  # repro: allow[state-coverage] kernel callback; re-installed by platform wiring
        # Platform hook: called with a packet-count delta so aggregate
        # progress counters stay O(1) (positive on send, negative on
        # reset).
        self.on_count: Optional[Callable[[int], None]] = None  # repro: allow[state-coverage] observer hook; re-registered by its owner after restore
        # Platform hook: invalidates cached poll schedules whenever a
        # control operation (enable, reset, budget change) could make
        # this generator emit earlier than previously computed.
        self.on_wake: Optional[Callable[[], None]] = None  # repro: allow[state-coverage] observer hook; re-registered by its owner after restore
        # Statistics.
        self.packets_sent = 0
        self.flits_sent = 0
        self._backpressure_cycles = 0
        self._records: Optional[List[TraceRecord]] = [] if record else None

    # ------------------------------------------------------------------
    # Control (driven by the platform's TG device registers)
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True
        self.wake()

    def disable(self) -> None:
        # A disabled generator stops accruing backpressure ticks, so a
        # parked stretch must settle up to the cycle before the
        # control write took effect.
        self._settle_backpressure()
        self.enabled = False

    def wake(self) -> None:
        """Signal that this generator's poll schedule may have changed."""
        # Any control operation (enable, reset, budget write) can
        # change what the next poll would do: settle a parked
        # backpressure stretch first, then let the next poll
        # re-evaluate (and possibly re-park) from scratch.
        self._settle_backpressure()
        self._silent_until = 0
        if self.on_wake is not None:
            self.on_wake()

    def _settle_backpressure(self) -> None:
        """Account the per-cycle ticks of a parked backpressure stretch."""
        since = self._bp_since
        if since is None:
            return
        self._bp_since = None
        if self._clock is not None:
            until = self._clock() - 1
            if until > since:
                self._backpressure_cycles += until - since

    def _on_ni_drain(self, now: int) -> None:
        """NI drain watch: the source queue dropped below the limit.

        The pop happens in the network's inject phase of ``now``, a
        cycle whose (virtual) poll still saw a full queue: settle
        through ``now`` and resume polling next cycle.  Unlike a
        control operation this changes nothing about the *model's*
        schedule, so the ``_silent_until`` emission cache stays valid
        — the resumed poll rounds skip straight past the silent
        stretch instead of re-probing the model.
        """
        since = self._bp_since
        if since is None:
            return  # stale watch (reset/control op already unparked)
        self._bp_since = None
        if now > since:
            self._backpressure_cycles += now - since
        if self.on_wake is not None:
            self.on_wake()

    def reset(self, seed: Optional[int] = None) -> None:
        """Rewind the model and clear the run counters."""
        self.model.reset(seed)
        if self.on_count is not None and self.packets_sent:
            self.on_count(-self.packets_sent)
        self.packets_sent = 0
        self.flits_sent = 0
        # Pre-reset backpressure (settled or parked) is discarded.
        self._bp_since = None
        self._backpressure_cycles = 0
        if self._records is not None:
            self._records = []
        self.wake()

    @property
    def backpressure_cycles(self) -> int:
        """Cycles stalled on a full NI queue (settled through the last
        emulated cycle, including any still-parked stretch)."""
        if self._bp_since is not None and self._clock is not None:
            pending = self._clock() - 1 - self._bp_since
            if pending > 0:
                return self._backpressure_cycles + pending
        return self._backpressure_cycles

    @property
    def done(self) -> bool:
        """True once the packet budget is exhausted."""
        if self.max_packets is None:
            return False
        return self.packets_sent >= self.max_packets

    def next_emission_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle ``>= now`` this generator may emit, else None.

        Mirrors :meth:`TrafficModel.next_emission_cycle` with the
        generator-level stop conditions folded in; the platform's idle
        fast-forward takes the minimum over all generators.
        """
        if not self.enabled or self.done:
            return None
        return self.model.next_emission_cycle(now)

    def next_poll_cycle(self, after: int) -> int:
        """Earliest cycle ``>= after`` at which :meth:`step` could do
        anything observable — emit a packet or count a backpressure
        cycle.  The platform skips whole generator rounds until the
        minimum over all generators, which keeps idle polling off the
        hot path while preserving every statistic bit-for-bit.
        """
        if not self.enabled or self.done:
            return NEVER_POLL
        if self._bp_since is not None:
            # Backpressure-parked: the NI drain watch (or a control
            # operation) wakes us; until then no poll can observe
            # anything that bulk settlement does not already account.
            return NEVER_POLL
        if self.ni.pending_flits >= self.queue_limit:
            return after  # backpressure accounting is per-cycle
        t = self.model.next_emission_cycle(after)
        if t is None:
            return NEVER_POLL
        return t if t > after else after

    # ------------------------------------------------------------------
    # Per-cycle interface
    # ------------------------------------------------------------------
    def step(self, now: int) -> Optional[Packet]:
        """Poll the model for cycle ``now``; return the emitted packet."""
        if not self.enabled or self.done:
            return None
        if self._bp_since is not None:
            # Parked on backpressure: ticks settle in bulk on wake-up,
            # so a poll forced by another generator's round is free.
            return None
        if self.ni.pending_flits >= self.queue_limit:
            self._backpressure_cycles += 1
            if self._clock is not None:
                # Park: stop polling until the NI queue drains below
                # the limit (or a control operation intervenes).
                self._bp_since = now
                self.ni.watch_drain(self.queue_limit, self._on_ni_drain)
            return None
        if now < self._silent_until:
            return None  # model contractually silent until then
        emission = self.model.poll(now)
        if emission is None:
            nxt = self.model.next_emission_cycle(now + 1)
            # None = never again; park the cache past any realistic run.
            self._silent_until = NEVER_POLL if nxt is None else nxt
            return None
        length, dst, burst_id = emission
        packet = Packet(
            src=self.node,
            dst=dst,
            length=length,
            injection_cycle=now,
            burst_id=burst_id,
        )
        self.ni.offer(packet)
        self.packets_sent += 1
        self.flits_sent += length
        if self.on_count is not None:
            self.on_count(1)
        if self._records is not None:
            self._records.append(TraceRecord(now, dst, length, burst_id))
        return packet

    # ------------------------------------------------------------------
    # Trace recording
    # ------------------------------------------------------------------
    def recorded_trace(self, name: Optional[str] = None) -> Trace:
        """The emissions of this run as a replayable trace."""
        if self._records is None:
            raise RuntimeError(
                "generator was constructed with record=False"
            )
        return Trace(
            list(self._records), name=name or f"tg{self.node}_recorded"
        )
