"""Hardware-faithful pseudo-random number generation.

The FPGA traffic generators draw their randomness from linear-feedback
shift registers seeded through the "random initialization" registers of
the TG register bench (Slide 10).  This module reproduces that
behaviour: :class:`Lfsr32` is a maximal-length 32-bit Galois LFSR, and
:class:`LfsrRandom` layers the distributions the stochastic traffic
models need (uniform integers, Bernoulli trials, geometric and
exponential variates) on top of it.

Using an LFSR instead of Python's Mersenne Twister keeps the software
emulation bit-compatible with what a hardware TG would produce from the
same seed, and makes every experiment reproducible from the seed
registers alone.
"""

from __future__ import annotations

import math

#: Taps x^32 + x^22 + x^2 + x^1 + 1 (maximal length, period 2^32 - 1).
_GALOIS_MASK_32 = 0x80200003

_MASK_64 = 0xFFFFFFFFFFFFFFFF

#: SplitMix64 increment (golden-ratio gamma), the standard stream
#: splitter constant.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One SplitMix64 finalisation round (full 64-bit avalanche)."""
    x = (x + _SPLITMIX_GAMMA) & _MASK_64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK_64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK_64
    x ^= x >> 31
    return x


def derive_stream_seed(root_seed: int, *stream: int) -> int:
    """An independent 32-bit LFSR seed for sub-stream ``(root_seed, *stream)``.

    The experiment runner launches many emulations from one user-level
    seed — several traffic generators per scenario, many scenarios per
    sweep, possibly in parallel worker processes.  Deriving each TG
    seed as ``root_seed + i`` (the seed-register convention of a single
    hand-configured platform) makes *neighbouring* scenarios share LFSR
    streams: TG 1 of the run seeded 1 replays TG 0 of the run seeded 2.
    This function spawns statistically independent streams instead:
    each key of ``stream`` (scenario content hash, generator index, ...)
    is absorbed through a SplitMix64 avalanche round, so any change in
    any key decorrelates the whole 32-bit output.

    The result is deterministic in its inputs alone — sweep workers can
    derive it locally in any order, which is what keeps serial and
    parallel sweep runs bit-identical — and never zero (the all-zero
    LFSR state is its fixed point, see :class:`Lfsr32`).
    """
    state = _splitmix64(root_seed & _MASK_64)
    for key in stream:
        state = _splitmix64(state ^ (key & _MASK_64))
    seed = (state ^ (state >> 32)) & 0xFFFFFFFF
    return seed if seed else 0x1B00B1E5


class Lfsr32:
    """A 32-bit maximal-length Galois LFSR.

    The register must never be zero (the all-zero state is the single
    fixed point of an LFSR), so a zero seed is mapped to a fixed
    non-zero constant exactly as the hardware seed-load logic would.
    """

    def __init__(self, seed: int = 0xDEADBEEF) -> None:
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        seed &= 0xFFFFFFFF
        self.state = seed if seed else 0x1B00B1E5

    def next_bit(self) -> int:
        """Advance one step; return the output bit."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= _GALOIS_MASK_32
        return out

    def next_bits(self, n: int) -> int:
        """Shift out ``n`` bits (LSB first) as an ``n``-bit integer."""
        if not 0 < n <= 64:
            raise ValueError(f"bit count must be in [1, 64], got {n}")
        value = 0
        for i in range(n):
            value |= self.next_bit() << i
        return value

    def next_word(self) -> int:
        """A full 32-bit pseudo-random word."""
        return self.next_bits(32)


class LfsrRandom:
    """Distribution sampling on top of an :class:`Lfsr32`.

    All methods consume a bounded number of LFSR bits, mirroring how a
    hardware TG converts shift-register output into traffic parameters.
    """

    def __init__(self, seed: int = 0xDEADBEEF) -> None:
        self._lfsr = Lfsr32(seed)

    def reseed(self, seed: int) -> None:
        self._lfsr.reseed(seed)

    @property
    def state(self) -> int:
        return self._lfsr.state

    def random(self) -> float:
        """Uniform float in [0, 1) with 32-bit resolution."""
        return self._lfsr.next_word() / 4294967296.0

    def uniform_int(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi].

        Uses rejection sampling over the smallest covering power of
        two, so the distribution is exactly uniform (no modulo bias).
        """
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        if span == 1:
            return lo
        bits = max(1, (span - 1).bit_length())
        while True:
            draw = self._lfsr.next_bits(bits)
            if draw < span:
                return lo + draw

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p`` (used for Markov transitions)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        if p == 0.0:
            return False
        if p == 1.0:
            return True
        return self.random() < p

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success.

        Sampled by inversion (single uniform draw), support {1, 2, ...}.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {p}")
        if p == 1.0:
            return 1
        u = self.random()
        # Guard u == 0, where log would diverge.
        u = max(u, 2.0 ** -33)
        return 1 + int(math.log(u) / math.log(1.0 - p))

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (mean ``1/rate``)."""
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate}")
        u = max(self.random(), 2.0 ** -33)
        return -math.log(u) / rate

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.uniform_int(0, len(seq) - 1)]
