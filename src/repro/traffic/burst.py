"""The burst (2-state Markov) stochastic traffic model.

Slide 9: "Burst Model; Parameters: Transition probabilities in a
2-state Markov chain."  The chain alternates between an OFF state
(silence) and an ON state (back-to-back packets).  Time advances in
*slots* of one packet-serialisation time; at every slot boundary the
chain transitions with the configured probabilities:

* ``p_on``  — probability of leaving OFF for ON (OFF -> ON),
* ``p_off`` — probability of leaving ON for OFF (ON -> OFF).

The stationary ON probability is ``p_on / (p_on + p_off)`` and the mean
burst length is ``1 / p_off`` packets, which gives the model a
closed-form offered load used by the monitor and by tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.traffic.base import DestinationChooser, TrafficModel

_OFF, _ON = 0, 1


class BurstTraffic(TrafficModel):
    """Markov-modulated on/off bursts of back-to-back packets.

    Parameters
    ----------
    p_on:
        OFF -> ON transition probability per slot, in (0, 1].
    p_off:
        ON -> OFF transition probability per slot, in (0, 1].
    length:
        Packet length in flits (every packet of a burst has this
        length; the slot duration equals the serialisation time).
    destination:
        Destination chooser, consulted once per *burst* so a whole
        burst lands on one receptor (trace-like locality), matching the
        per-burst statistics of the paper's figures.
    seed:
        LFSR seed.
    """

    def __init__(
        self,
        p_on: float,
        p_off: float,
        length: int,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> None:
        super().__init__(seed)
        if not 0.0 < p_on <= 1.0:
            raise ValueError(f"p_on must be in (0, 1], got {p_on}")
        if not 0.0 < p_off <= 1.0:
            raise ValueError(f"p_off must be in (0, 1], got {p_off}")
        if length < 1:
            raise ValueError(f"packet length must be >= 1, got {length}")
        self.p_on = p_on  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.p_off = p_off  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.length = length
        self.destination = destination  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self._state = _OFF
        self._next_slot = 0
        self._burst_id = -1
        self._burst_dst: Optional[int] = None

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._state = _OFF
        self._next_slot = 0
        self._burst_id = -1
        self._burst_dst = None

    def poll(self, now: int) -> Optional[Tuple[int, int, Optional[int]]]:
        if now < self._next_slot:
            return None
        self._next_slot = now + self.length  # one slot per packet time
        if self._state == _OFF:
            if self.rng.bernoulli(self.p_on):
                self._state = _ON
                self._burst_id += 1
                self._burst_dst = self.destination.next_destination(
                    self.rng
                )
            else:
                return None
        else:
            if self.rng.bernoulli(self.p_off):
                self._state = _OFF
                return None
        assert self._burst_dst is not None
        return (self.length, self._burst_dst, self._burst_id)

    def next_emission_cycle(self, now: int) -> Optional[int]:
        # The chain must be polled at every slot boundary (each poll
        # draws the transition), but never between slots.
        return max(now, self._next_slot)

    @property
    def stationary_on(self) -> float:
        """Long-run fraction of slots spent in the ON state."""
        return self.p_on / (self.p_on + self.p_off)

    @property
    def mean_burst_packets(self) -> float:
        """Mean number of packets per burst (geometric ON dwell)."""
        return 1.0 / self.p_off

    def expected_load(self) -> Optional[float]:
        # One packet of `length` flits per `length`-cycle slot while ON.
        return self.stationary_on

    @classmethod
    def for_load(
        cls,
        load: float,
        mean_burst_packets: float,
        length: int,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> "BurstTraffic":
        """Construct a chain with a target load and mean burst length.

        Solves ``p_off = 1 / mean_burst_packets`` and
        ``p_on = load * p_off / (1 - load)``; the paper's 45% TG load
        with a chosen packets-per-burst maps directly onto this.
        """
        if not 0.0 < load < 1.0:
            raise ValueError(f"load must be in (0, 1), got {load}")
        if mean_burst_packets < 1.0:
            raise ValueError(
                f"mean burst length must be >= 1 packet, got"
                f" {mean_burst_packets}"
            )
        p_off = 1.0 / mean_burst_packets
        p_on = load * p_off / (1.0 - load)
        if p_on > 1.0:
            raise ValueError(
                f"load {load} with {mean_burst_packets} packets/burst"
                f" needs p_on > 1; increase the burst length"
            )
        return cls(p_on, p_off, length, destination, seed)
