"""Deterministic on/off traffic.

A deterministic companion to the Markov burst model: exactly
``packets_per_burst`` back-to-back packets, then exactly ``gap`` idle
cycles, repeated.  The trace-driven figures of the paper sweep
"packets/burst" on the x-axis; this model produces that sweep without
stochastic variance, and the synthetic trace producers reuse it.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.traffic.base import DestinationChooser, TrafficModel


class OnOffTraffic(TrafficModel):
    """Fixed-shape bursts: N packets on, ``gap`` cycles off.

    Parameters
    ----------
    packets_per_burst:
        Packets emitted back-to-back in each ON period.
    gap:
        Idle cycles between bursts (>= 0).
    length:
        Flits per packet.
    destination:
        Destination chooser, consulted once per burst.
    """

    def __init__(
        self,
        packets_per_burst: int,
        gap: int,
        length: int,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> None:
        super().__init__(seed)
        if packets_per_burst < 1:
            raise ValueError(
                f"packets per burst must be >= 1, got {packets_per_burst}"
            )
        if gap < 0:
            raise ValueError(f"gap must be >= 0 cycles, got {gap}")
        if length < 1:
            raise ValueError(f"packet length must be >= 1, got {length}")
        self.packets_per_burst = packets_per_burst  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.gap = gap  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.length = length
        self.destination = destination  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self._next_emission = 0
        self._in_burst = 0
        self._burst_id = 0
        self._burst_dst: Optional[int] = None

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._next_emission = 0
        self._in_burst = 0
        self._burst_id = 0
        self._burst_dst = None

    def poll(self, now: int) -> Optional[Tuple[int, int, Optional[int]]]:
        if now < self._next_emission:
            return None
        if self._in_burst == 0:
            self._burst_dst = self.destination.next_destination(self.rng)
        dst = self._burst_dst
        assert dst is not None
        burst_id = self._burst_id
        self._in_burst += 1
        if self._in_burst >= self.packets_per_burst:
            self._in_burst = 0
            self._burst_id += 1
            self._next_emission = now + self.length + self.gap
        else:
            self._next_emission = now + self.length
        return (self.length, dst, burst_id)

    def next_emission_cycle(self, now: int) -> Optional[int]:
        return max(now, self._next_emission)

    @property
    def burst_cycles(self) -> int:
        """Length of one on+off period in cycles."""
        return self.packets_per_burst * self.length + self.gap

    def expected_load(self) -> Optional[float]:
        on = self.packets_per_burst * self.length
        return on / (on + self.gap) if (on + self.gap) else 1.0

    @classmethod
    def for_load(
        cls,
        load: float,
        packets_per_burst: int,
        length: int,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> "OnOffTraffic":
        """Choose the gap so the duty cycle equals ``load``."""
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        on = packets_per_burst * length
        gap = round(on * (1.0 - load) / load)
        return cls(packets_per_burst, gap, length, destination, seed)
