"""Poisson traffic ("other models possible (i.e. Poisson...)", Slide 9).

Packet arrivals form a Poisson process, discretised to the cycle grid:
inter-arrival gaps are exponential variates rounded to whole cycles (at
least one).  The offered load is ``length * rate`` flits per cycle.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.traffic.base import DestinationChooser, TrafficModel


class PoissonTraffic(TrafficModel):
    """Poisson packet arrivals.

    Parameters
    ----------
    rate:
        Mean arrivals per cycle (packets/cycle), in (0, 1].
    length:
        Packet length in flits.
    destination:
        Destination chooser consulted per packet.
    seed:
        LFSR seed.
    """

    def __init__(
        self,
        rate: float,
        length: int,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> None:
        super().__init__(seed)
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if length < 1:
            raise ValueError(f"packet length must be >= 1, got {length}")
        self.rate = rate  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.length = length
        self.destination = destination  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self._next_emission: Optional[int] = None

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._next_emission = None

    def _draw_gap(self) -> int:
        return max(1, round(self.rng.expovariate(self.rate)))

    def poll(self, now: int) -> Optional[Tuple[int, int, Optional[int]]]:
        if self._next_emission is None:
            # First arrival: a full exponential gap from cycle 0, so the
            # process has no deterministic burst at start-up.
            self._next_emission = now + self._draw_gap() - 1
        if now < self._next_emission:
            return None
        self._next_emission = now + self._draw_gap()
        dst = self.destination.next_destination(self.rng)
        return (self.length, dst, None)

    def next_emission_cycle(self, now: int) -> Optional[int]:
        # Until the first poll draws the initial gap there is no
        # schedule yet; demand a poll at ``now``.
        if self._next_emission is None:
            return now
        return max(now, self._next_emission)

    def expected_load(self) -> Optional[float]:
        return min(1.0, self.rate * self.length)

    @classmethod
    def for_load(
        cls,
        load: float,
        length: int,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> "PoissonTraffic":
        """Poisson process whose offered load is ``load`` flits/cycle."""
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        return cls(load / length, length, destination, seed)
