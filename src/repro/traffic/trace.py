"""Trace-driven traffic.

Slide 9: "Trace driven traffic generators: Generates traffic from a
trace recorded on a real life application."  We do not have the
authors' application traces, so this module provides (a) the trace
format and replay engine, and (b) synthetic trace producers that expose
the exact parameters the paper's trace-driven figures sweep —
packets per burst and flits per packet — plus an MPEG-like
frame-structured producer standing in for a "real life application"
recording (see DESIGN.md §2 for the substitution rationale).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.traffic.base import DestinationChooser, TrafficModel
from repro.traffic.rng import LfsrRandom


@dataclass(frozen=True)
class TraceRecord:
    """One packet emission recorded in a trace."""

    cycle: int
    dst: int
    length: int
    burst_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"trace cycle must be >= 0, got {self.cycle}")
        if self.length < 1:
            raise ValueError(
                f"trace packet length must be >= 1, got {self.length}"
            )


class Trace:
    """An ordered sequence of :class:`TraceRecord` with metadata."""

    def __init__(
        self, records: Iterable[TraceRecord], name: str = "trace"
    ) -> None:
        self.records: List[TraceRecord] = sorted(
            records, key=lambda r: r.cycle
        )
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def total_flits(self) -> int:
        return sum(r.length for r in self.records)

    @property
    def span_cycles(self) -> int:
        """Cycles from the first to one past the last recorded emission."""
        if not self.records:
            return 0
        return self.records[-1].cycle + 1 - self.records[0].cycle

    @property
    def offered_load(self) -> float:
        """Recorded flits per cycle over the trace span."""
        span = self.span_cycles
        return self.total_flits / span if span else 0.0

    def burst_count(self) -> int:
        """Number of distinct burst ids (0 when the trace is unbursty)."""
        return len(
            {r.burst_id for r in self.records if r.burst_id is not None}
        )


class TraceTraffic(TrafficModel):
    """Replay a trace through the standard traffic-model interface.

    Replay is *causal*: a record is never emitted before its recorded
    cycle; when several records share a cycle (or the NI backpressures
    the generator), emissions slip to consecutive cycles, preserving
    order — exactly how the hardware trace-driven TG streams a trace
    memory through its network interface.
    """

    def __init__(self, trace: Trace, seed: int = 1) -> None:
        super().__init__(seed)
        self.trace = trace  # repro: allow[state-coverage] immutable trace table from the spec
        self._cursor = 0

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._cursor = 0

    def poll(self, now: int) -> Optional[Tuple[int, int, Optional[int]]]:
        if self._cursor >= len(self.trace.records):
            return None
        record = self.trace.records[self._cursor]
        if now < record.cycle:
            return None
        self._cursor += 1
        return (record.length, record.dst, record.burst_id)

    def next_emission_cycle(self, now: int) -> Optional[int]:
        if self._cursor >= len(self.trace.records):
            return None  # trace replayed to the end; never emits again
        return max(now, self.trace.records[self._cursor].cycle)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.trace.records)

    def expected_load(self) -> Optional[float]:
        return self.trace.offered_load or None


# ----------------------------------------------------------------------
# Serialisation (the format a recording probe would write)
# ----------------------------------------------------------------------
_HEADER = "# repro-noc trace v1: cycle dst length burst_id"


def save_trace(trace: Trace, path_or_file: Union[str, io.TextIOBase]) -> None:
    """Write a trace in the line-oriented interchange format."""

    def _write(fh) -> None:
        fh.write(_HEADER + "\n")
        fh.write(f"# name: {trace.name}\n")
        for r in trace.records:
            burst = "-" if r.burst_id is None else str(r.burst_id)
            fh.write(f"{r.cycle} {r.dst} {r.length} {burst}\n")

    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            _write(fh)
    else:
        _write(path_or_file)


def load_trace(path_or_file: Union[str, io.TextIOBase]) -> Trace:
    """Read a trace written by :func:`save_trace`."""

    def _read(fh) -> Trace:
        name = "trace"
        records: List[TraceRecord] = []
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# name:"):
                    name = line.split(":", 1)[1].strip()
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(
                    f"malformed trace line {line_no}: {line!r}"
                )
            cycle, dst, length, burst = parts
            records.append(
                TraceRecord(
                    cycle=int(cycle),
                    dst=int(dst),
                    length=int(length),
                    burst_id=None if burst == "-" else int(burst),
                )
            )
        return Trace(records, name=name)

    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            return _read(fh)
    return _read(path_or_file)


# ----------------------------------------------------------------------
# Synthetic trace producers (stand-ins for real application recordings)
# ----------------------------------------------------------------------
def synthetic_burst_trace(
    n_bursts: int,
    packets_per_burst: int,
    flits_per_packet: int,
    gap: int,
    dst: Union[int, Sequence[int]],
    start: int = 0,
    seed: int = 1,
    name: Optional[str] = None,
) -> Trace:
    """A burst-structured trace with the exact paper sweep parameters.

    ``n_bursts`` bursts of ``packets_per_burst`` back-to-back packets of
    ``flits_per_packet`` flits, separated by ``gap`` idle cycles.  When
    ``dst`` is a sequence, each burst picks its destination uniformly
    (whole bursts stay on one destination, like a DMA transfer).
    """
    if n_bursts < 1:
        raise ValueError(f"need >= 1 burst, got {n_bursts}")
    if packets_per_burst < 1:
        raise ValueError(
            f"packets per burst must be >= 1, got {packets_per_burst}"
        )
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    rng = LfsrRandom(seed)
    dsts: Sequence[int] = (dst,) if isinstance(dst, int) else tuple(dst)
    records: List[TraceRecord] = []
    cycle = start
    for burst in range(n_bursts):
        burst_dst = dsts[0] if len(dsts) == 1 else rng.choice(dsts)
        for _ in range(packets_per_burst):
            records.append(
                TraceRecord(cycle, burst_dst, flits_per_packet, burst)
            )
            cycle += flits_per_packet  # back-to-back serialisation
        cycle += gap
    trace_name = name or (
        f"burst_b{packets_per_burst}_f{flits_per_packet}_g{gap}"
    )
    return Trace(records, name=trace_name)


#: Relative frame sizes of an MPEG-like group of pictures.
_GOP_PATTERN = ("I", "B", "B", "P", "B", "B", "P", "B", "B", "P", "B", "B")
_FRAME_PACKETS = {"I": 12, "P": 5, "B": 2}


def synthetic_mpeg_trace(
    n_frames: int,
    dst: int,
    flits_per_packet: int = 8,
    frame_interval: int = 512,
    size_jitter: float = 0.25,
    start: int = 0,
    seed: int = 7,
) -> Trace:
    """An MPEG-decoder-like frame trace (substitute "real application").

    Frames arrive every ``frame_interval`` cycles following an IBBP
    group-of-pictures pattern; each frame is a burst whose packet count
    scales with the frame type (I ≫ P > B) with multiplicative jitter.
    This reproduces the heavy-tailed, periodic-burst structure of a
    recorded multimedia trace, which is what the paper's trace-driven
    experiments feed the platform.
    """
    if n_frames < 1:
        raise ValueError(f"need >= 1 frame, got {n_frames}")
    if not 0.0 <= size_jitter < 1.0:
        raise ValueError(
            f"size jitter must be in [0, 1), got {size_jitter}"
        )
    rng = LfsrRandom(seed)
    records: List[TraceRecord] = []
    for frame in range(n_frames):
        kind = _GOP_PATTERN[frame % len(_GOP_PATTERN)]
        base = _FRAME_PACKETS[kind]
        if size_jitter:
            lo = max(1, round(base * (1.0 - size_jitter)))
            hi = max(lo, round(base * (1.0 + size_jitter)))
            packets = rng.uniform_int(lo, hi)
        else:
            packets = base
        cycle = start + frame * frame_interval
        for _ in range(packets):
            records.append(
                TraceRecord(cycle, dst, flits_per_packet, frame)
            )
            cycle += flits_per_packet
    return Trace(records, name=f"mpeg_{n_frames}f")
