"""Traffic-model and destination-chooser interfaces.

A :class:`TrafficModel` is polled once per cycle by its traffic
generator and decides when to emit a packet and how long it should be.
Destination selection is factored into :class:`DestinationChooser`
objects so the same stochastic process can drive fixed-pair flows (the
paper's experimental setup), uniformly random destinations or hotspot
patterns.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.traffic.rng import LfsrRandom


def interval_for_load(length: int, load: float) -> int:
    """Inter-packet interval achieving a target injection load.

    A generator emitting ``length``-flit packets every ``interval``
    cycles occupies its injection link for ``length / interval`` of the
    time; the paper's setup drives each TG at 45% of the maximum
    bandwidth (Slide 19), i.e. ``interval_for_load(length, 0.45)``.
    The interval is rounded up so the realised load never exceeds the
    target.
    """
    if length < 1:
        raise ValueError(f"packet length must be >= 1, got {length}")
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    return max(length, math.ceil(length / load))


class DestinationChooser:
    """Picks the destination node of each generated packet."""

    def next_destination(self, rng: LfsrRandom) -> int:
        raise NotImplementedError

    def destinations(self) -> Tuple[int, ...]:
        """All destinations this chooser can emit (for route validation)."""
        raise NotImplementedError


class FixedDestination(DestinationChooser):
    """Always the same destination (one TG feeding one TR)."""

    def __init__(self, dst: int) -> None:
        if dst < 0:
            raise ValueError("destination must be a node index >= 0")
        self.dst = dst

    def next_destination(self, rng: LfsrRandom) -> int:
        return self.dst

    def destinations(self) -> Tuple[int, ...]:
        return (self.dst,)


class UniformRandomDestination(DestinationChooser):
    """Uniformly random destination among a candidate set."""

    def __init__(self, candidates: Sequence[int]) -> None:
        if not candidates:
            raise ValueError("candidate destination set is empty")
        self.candidates = tuple(candidates)

    def next_destination(self, rng: LfsrRandom) -> int:
        return rng.choice(self.candidates)

    def destinations(self) -> Tuple[int, ...]:
        return self.candidates


class HotspotDestination(DestinationChooser):
    """One hotspot destination with elevated probability, rest uniform."""

    def __init__(
        self,
        hotspot: int,
        others: Sequence[int],
        hotspot_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < hotspot_fraction <= 1.0:
            raise ValueError(
                f"hotspot fraction must be in (0, 1], got"
                f" {hotspot_fraction}"
            )
        if not others and hotspot_fraction < 1.0:
            raise ValueError(
                "non-hotspot probability mass but no other destinations"
            )
        self.hotspot = hotspot
        self.others = tuple(others)
        self.hotspot_fraction = hotspot_fraction

    def next_destination(self, rng: LfsrRandom) -> int:
        if rng.bernoulli(self.hotspot_fraction) or not self.others:
            return self.hotspot
        return rng.choice(self.others)

    def destinations(self) -> Tuple[int, ...]:
        return (self.hotspot,) + self.others


class TrafficModel:
    """Base class of all traffic processes.

    Subclasses implement :meth:`poll`, returning either ``None`` (no
    packet this cycle) or a ``(length, dst, burst_id)`` emission.  The
    wrapping :class:`~repro.traffic.generator.TrafficGenerator` turns
    emissions into :class:`~repro.noc.flit.Packet` objects stamped with
    the current cycle.
    """

    def __init__(self, seed: int = 1) -> None:
        self.rng = LfsrRandom(seed)
        self._seed = seed  # repro: allow[state-coverage] rebuilt from the spec; live stream state rides in rng.state

    def reset(self, seed: Optional[int] = None) -> None:
        """Rewind the process (optionally with a new seed)."""
        if seed is not None:
            self._seed = seed
        self.rng.reseed(self._seed)

    def poll(self, now: int) -> Optional[Tuple[int, int, Optional[int]]]:
        """Emission for cycle ``now``: ``(length, dst, burst_id)`` or None."""
        raise NotImplementedError

    def next_emission_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle ``>= now`` at which :meth:`poll` may emit.

        ``None`` means the process will never emit again (an exhausted
        trace).  The contract powering idle fast-forward: for every
        cycle ``t`` with ``now <= t < next_emission_cycle(now)``,
        ``poll(t)`` would return ``None`` *without side effects* (no
        RNG draws, no state changes), so a quiescent platform may jump
        straight to the returned cycle.  The base implementation
        conservatively returns ``now`` (poll every cycle), which
        disables fast-forward for models that don't override it.
        """
        return now

    def expected_load(self) -> Optional[float]:
        """Long-run injected flits per cycle, when analytically known.

        Returns ``None`` for models without a closed form (e.g. trace
        replay); the monitor then reports measured load only.
        """
        return None
