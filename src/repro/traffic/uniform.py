"""The uniform stochastic traffic model.

Slide 9: "Uniform Model; Parameters: Length of packets. Interval
between packets."  The generator emits one packet of a fixed (or
uniformly randomised) flit length every fixed (or uniformly randomised)
number of cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.traffic.base import DestinationChooser, TrafficModel


class UniformTraffic(TrafficModel):
    """Periodic packet emission with optional uniform jitter.

    Parameters
    ----------
    length:
        Packet length in flits, either an int or an inclusive
        ``(lo, hi)`` range sampled uniformly per packet.
    interval:
        Cycles between consecutive emissions, int or ``(lo, hi)`` range.
        The first packet is emitted at the first poll.
    destination:
        Destination chooser consulted per packet.
    seed:
        LFSR seed (the TG's random-initialization register).
    """

    def __init__(
        self,
        length,
        interval,
        destination: DestinationChooser,
        seed: int = 1,
    ) -> None:
        super().__init__(seed)
        self._length_range = self._as_range(length, "length")  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self._interval_range = self._as_range(interval, "interval")  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        if self._length_range[0] < 1:
            raise ValueError("packet length must be >= 1 flit")
        if self._interval_range[0] < 1:
            raise ValueError("inter-packet interval must be >= 1 cycle")
        self.destination = destination  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self._next_emission = 0

    @staticmethod
    def _as_range(value, what: str) -> Tuple[int, int]:
        if isinstance(value, int):
            return (value, value)
        lo, hi = value
        if lo > hi:
            raise ValueError(f"empty {what} range ({lo}, {hi})")
        return (int(lo), int(hi))

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._next_emission = 0

    def poll(self, now: int) -> Optional[Tuple[int, int, Optional[int]]]:
        if now < self._next_emission:
            return None
        lo, hi = self._length_range
        length = lo if lo == hi else self.rng.uniform_int(lo, hi)
        lo_i, hi_i = self._interval_range
        interval = lo_i if lo_i == hi_i else self.rng.uniform_int(lo_i, hi_i)
        self._next_emission = now + interval
        dst = self.destination.next_destination(self.rng)
        return (length, dst, None)

    def next_emission_cycle(self, now: int) -> Optional[int]:
        return max(now, self._next_emission)

    def expected_load(self) -> Optional[float]:
        mean_length = sum(self._length_range) / 2.0
        mean_interval = sum(self._interval_range) / 2.0
        return mean_length / mean_interval
