"""Platform configuration.

The emulation flow (Slide 14) splits the setup in two:

* **Platform settings** (hardware, fixed at platform-compilation time):
  switch topology, buffer depth, arbitration, switching mode, and the
  number/type of traffic generators and receptors.
* **Software settings** (written over the bus at initialisation time):
  traffic definition — model parameters, seeds, packet budgets — and
  the routing tables.

:class:`PlatformConfig` captures both and exposes a
:meth:`~PlatformConfig.hardware_signature` so the flow can detect when
a change actually requires hardware re-synthesis ("avoids often
hardware re-synthesis", Slide 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigError
from repro.noc.routing import (
    RoutingFunction,
    build_multipath_tables,
    build_shortest_path_tables,
    build_updown_tables,
    paper_routing,
)
from repro.noc.switch import SwitchingMode
from repro.noc.topology import (
    PAPER_TG_LOAD,
    Topology,
    fully_connected,
    mesh,
    paper_flow_pairs,
    paper_topology,
    ring,
    spidergon,
    star,
    torus,
    tree,
)
from repro.traffic.base import (
    DestinationChooser,
    FixedDestination,
    TrafficModel,
    UniformRandomDestination,
    interval_for_load,
)
from repro.traffic.burst import BurstTraffic
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.poisson import PoissonTraffic
from repro.traffic.trace import (
    Trace,
    TraceTraffic,
    synthetic_burst_trace,
)
from repro.traffic.uniform import UniformTraffic

#: Traffic-model type tags accepted in :class:`TGSpec`.
TG_MODELS = ("uniform", "burst", "poisson", "onoff", "trace")

#: Receptor type tags accepted in :class:`TRSpec`.
TR_KINDS = ("stochastic", "tracedriven")


@dataclass
class TGSpec:
    """One traffic generator of the platform.

    ``model`` picks the traffic process; ``params`` holds its keyword
    parameters (see :func:`make_traffic_model`); ``max_packets`` bounds
    the run ("number of sent packets" experiments); ``seed`` loads the
    random-initialisation register.
    """

    node: int
    model: str = "uniform"
    params: Dict[str, Any] = field(default_factory=dict)
    max_packets: Optional[int] = None
    seed: int = 1
    queue_limit: int = 64

    def __post_init__(self) -> None:
        if self.model not in TG_MODELS:
            raise ConfigError(
                f"unknown traffic model {self.model!r}; expected one of"
                f" {TG_MODELS}"
            )
        if self.node < 0:
            raise ConfigError(f"TG node must be >= 0, got {self.node}")


@dataclass
class TRSpec:
    """One traffic receptor of the platform."""

    node: int
    kind: str = "tracedriven"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TR_KINDS:
            raise ConfigError(
                f"unknown receptor kind {self.kind!r}; expected one of"
                f" {TR_KINDS}"
            )
        if self.node < 0:
            raise ConfigError(f"TR node must be >= 0, got {self.node}")


@dataclass
class PlatformConfig:
    """Complete description of one emulation platform instance."""

    topology: Union[str, Topology] = "paper"
    routing: Union[str, RoutingFunction] = "paper_overlap"
    buffer_depth: int = 4
    arbitration: str = "round_robin"
    switching: Union[str, SwitchingMode] = SwitchingMode.WORMHOLE
    tgs: List[TGSpec] = field(default_factory=list)
    trs: List[TRSpec] = field(default_factory=list)
    f_clk_hz: float = 50e6
    sample_buffers: bool = False
    #: Verify at platform-compilation time that the routing tables
    #: cannot wormhole-deadlock (channel-dependency-graph check); the
    #: initialisation step of the real flow would load a bad table
    #: into hardware and hang the emulation, so we refuse it early.
    check_deadlock: bool = True
    name: str = "platform"

    def __post_init__(self) -> None:
        if self.buffer_depth < 1:
            raise ConfigError("buffer depth must be >= 1 flit")
        if self.f_clk_hz <= 0:
            raise ConfigError("clock frequency must be positive")
        if isinstance(self.switching, str):
            try:
                self.switching = SwitchingMode(self.switching)
            except ValueError:
                raise ConfigError(
                    f"unknown switching mode {self.switching!r}"
                ) from None

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def resolve_topology(self) -> Topology:
        """Materialise the topology (string specs name factories)."""
        return resolve_topology_spec(self.topology)

    def resolve_routing(self, topology: Topology) -> RoutingFunction:
        """Materialise the routing function for ``topology``."""
        if isinstance(self.routing, RoutingFunction):
            return self.routing
        spec = self.routing
        if spec.startswith("paper_"):
            if topology.name != "paper6":
                raise ConfigError(
                    f"routing {spec!r} only applies to the paper"
                    f" topology, not {topology.name!r}"
                )
            return paper_routing(topology, case=spec[len("paper_"):])
        if spec == "shortest":
            return build_shortest_path_tables(topology)
        if spec == "updown":
            return build_updown_tables(topology)
        if spec.startswith("multipath"):
            max_paths = 2
            if ":" in spec:
                try:
                    max_paths = int(spec.split(":", 1)[1])
                except ValueError:
                    raise ConfigError(
                        f"malformed routing spec {spec!r}"
                    ) from None
            return build_multipath_tables(topology, max_paths=max_paths)
        raise ConfigError(f"unknown routing spec {spec!r}")

    # ------------------------------------------------------------------
    # Flow support: what forces hardware re-synthesis?
    # ------------------------------------------------------------------
    def hardware_signature(self) -> Tuple:
        """Everything that is baked into the FPGA bitstream.

        Topology, switch parameters and the device mix require
        re-synthesis when changed; traffic parameters, seeds, packet
        budgets and routing tables are software settings written over
        the bus and do not.
        """
        topo = self.resolve_topology()
        switching = (
            self.switching.value
            if isinstance(self.switching, SwitchingMode)
            else self.switching
        )
        return (
            topo.name,
            topo.n_switches,
            topo.n_nodes,
            tuple(sorted(topo.switch_edges())),
            tuple(topo.node_switch),
            self.buffer_depth,
            self.arbitration,
            switching,
            tuple(sorted((tg.node, tg.model) for tg in self.tgs)),
            tuple(sorted((tr.node, tr.kind) for tr in self.trs)),
        )

    def software_signature(self) -> Tuple:
        """Everything the initialisation step writes over the bus."""
        routing = (
            self.routing
            if isinstance(self.routing, str)
            else type(self.routing).__name__
        )
        return (
            routing,
            tuple(
                (
                    tg.node,
                    tg.model,
                    tuple(sorted(_normalise(tg.params).items())),
                    tg.max_packets,
                    tg.seed,
                    tg.queue_limit,
                )
                for tg in self.tgs
            ),
            tuple(
                (
                    tr.node,
                    tr.kind,
                    tuple(sorted(_normalise(tr.params).items())),
                )
                for tr in self.trs
            ),
        )

    def with_software(self, **changes) -> "PlatformConfig":
        """A copy with software-level fields replaced (flow convenience)."""
        return replace(self, **changes)


def _normalise(params: Dict[str, Any]) -> Dict[str, Any]:
    """Make parameter dicts hashable for signatures."""
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if isinstance(value, Trace):
            out[key] = f"trace:{value.name}:{len(value)}"
        elif isinstance(value, (list, tuple)):
            out[key] = tuple(value)
        else:
            out[key] = value
    return out


#: Topology spec grammar: ``family:dim[:dim][:nodes_per_switch]``.
#: Every factory of ``repro.noc.topology`` is reachable, so the whole
#: fabric family space — not just the paper's 6-switch platform — is a
#: sweepable string parameter.
TOPOLOGY_SPECS = (
    "paper",
    "mesh:W:H[:N]",
    "torus:W:H[:N]",
    "ring:S[:N]",
    "star:L",
    "spidergon:S",
    "tree:A:D",
    "full:S[:N]",
)


def resolve_topology_spec(spec: Union[str, Topology]) -> Topology:
    """Materialise a topology spec string via the factory it names."""
    if isinstance(spec, Topology):
        return spec
    if spec == "paper":
        return paper_topology()
    parts = spec.split(":")
    kind, dims = parts[0], parts[1:]
    try:
        sizes = [int(d) for d in dims]
        if kind == "mesh" and len(sizes) in (2, 3):
            return mesh(*sizes)
        if kind == "torus" and len(sizes) in (2, 3):
            return torus(*sizes)
        if kind == "ring" and len(sizes) in (1, 2):
            return ring(*sizes)
        if kind == "star" and len(sizes) == 1:
            return star(sizes[0])
        if kind == "spidergon" and len(sizes) == 1:
            return spidergon(sizes[0])
        if kind == "tree" and len(sizes) == 2:
            return tree(*sizes)
        if kind == "full" and len(sizes) in (1, 2):
            return fully_connected(*sizes)
    except ValueError as exc:
        raise ConfigError(
            f"malformed topology spec {spec!r}: {exc}"
        ) from None
    if kind in ("mesh", "torus", "ring", "star", "spidergon", "tree", "full"):
        raise ConfigError(
            f"malformed topology spec {spec!r}; expected one of"
            f" {TOPOLOGY_SPECS}"
        )
    raise ConfigError(
        f"unknown topology spec {spec!r}; expected one of"
        f" {TOPOLOGY_SPECS}"
    )


# ----------------------------------------------------------------------
# Traffic model factory
# ----------------------------------------------------------------------
def _destination_from(params: Dict[str, Any]) -> DestinationChooser:
    dst = params.get("dst")
    if dst is None:
        raise ConfigError("traffic params must include 'dst'")
    if isinstance(dst, DestinationChooser):
        return dst
    if isinstance(dst, int):
        return FixedDestination(dst)
    return UniformRandomDestination(tuple(dst))


def make_traffic_model(spec: TGSpec) -> TrafficModel:
    """Instantiate the traffic process of one TG spec.

    Parameter conventions per model (all dicts also take ``dst``):

    * ``uniform``: ``length`` plus either ``interval`` or ``load``.
    * ``burst``: ``length`` plus either (``p_on``, ``p_off``) or
      (``load``, ``mean_burst_packets``).
    * ``poisson``: ``length`` plus either ``rate`` or ``load``.
    * ``onoff``: ``length``, ``packets_per_burst`` plus either ``gap``
      or ``load``.
    * ``trace``: either a ``trace`` object or the synthetic-burst
      parameters (``n_bursts``, ``packets_per_burst``,
      ``flits_per_packet``, ``gap``).
    """
    p = dict(spec.params)
    if spec.model == "trace":
        trace = p.get("trace")
        if trace is None:
            try:
                trace = synthetic_burst_trace(
                    n_bursts=p["n_bursts"],
                    packets_per_burst=p["packets_per_burst"],
                    flits_per_packet=p["flits_per_packet"],
                    gap=p.get("gap", 0),
                    dst=p["dst"],
                    seed=spec.seed,
                )
            except KeyError as missing:
                raise ConfigError(
                    f"trace TG needs 'trace' or synthetic parameters;"
                    f" missing {missing}"
                ) from None
        return TraceTraffic(trace, seed=spec.seed)

    destination = _destination_from(p)
    try:
        if spec.model == "uniform":
            length = p["length"]
            if "interval" in p:
                interval = p["interval"]
            else:
                interval = interval_for_load(
                    length if isinstance(length, int) else length[1],
                    p["load"],
                )
            return UniformTraffic(
                length, interval, destination, seed=spec.seed
            )
        if spec.model == "burst":
            if "p_on" in p or "p_off" in p:
                return BurstTraffic(
                    p["p_on"],
                    p["p_off"],
                    p["length"],
                    destination,
                    seed=spec.seed,
                )
            return BurstTraffic.for_load(
                p["load"],
                p.get("mean_burst_packets", 8.0),
                p["length"],
                destination,
                seed=spec.seed,
            )
        if spec.model == "poisson":
            if "rate" in p:
                return PoissonTraffic(
                    p["rate"], p["length"], destination, seed=spec.seed
                )
            return PoissonTraffic.for_load(
                p["load"], p["length"], destination, seed=spec.seed
            )
        if spec.model == "onoff":
            if "gap" in p:
                return OnOffTraffic(
                    p["packets_per_burst"],
                    p["gap"],
                    p["length"],
                    destination,
                    seed=spec.seed,
                )
            return OnOffTraffic.for_load(
                p["load"],
                p["packets_per_burst"],
                p["length"],
                destination,
                seed=spec.seed,
            )
    except KeyError as missing:
        raise ConfigError(
            f"traffic model {spec.model!r} is missing parameter"
            f" {missing}"
        ) from None
    raise ConfigError(f"unknown traffic model {spec.model!r}")


# ----------------------------------------------------------------------
# The paper's canonical setup (Slide 19) and the generic fabric sweep
# ----------------------------------------------------------------------
def _tg_params_for(
    traffic: str,
    load: float,
    length: int,
    dst: Any,
    overrides: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """Per-model default TG parameters shared by the config builders."""
    params: Dict[str, Any] = {"dst": dst, "length": length}
    if traffic in ("uniform", "poisson"):
        params["load"] = load
    elif traffic == "burst":
        params["load"] = load
        params["mean_burst_packets"] = 8.0
    elif traffic == "onoff":
        params["load"] = load
        params["packets_per_burst"] = 8
    elif traffic == "trace":
        params.update(
            n_bursts=256,
            packets_per_burst=8,
            flits_per_packet=length,
            gap=round(8 * length * (1.0 - load) / load),
        )
        params.pop("length")
    else:
        raise ConfigError(f"unknown traffic family {traffic!r}")
    if overrides:
        params.update(overrides)
    return params


def paper_platform_config(
    traffic: str = "uniform",
    load: float = PAPER_TG_LOAD,
    length: int = 8,
    max_packets: Optional[int] = 10_000,
    routing_case: str = "overlap",
    receptor_kind: str = "tracedriven",
    buffer_depth: int = 4,
    seed: int = 1,
    traffic_params: Optional[Dict[str, Any]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> PlatformConfig:
    """The 6-switch / 4-TG / 4-TR experimental platform.

    Each generator drives its diagonal receptor at ``load`` (the paper
    uses 45%); ``routing_case`` selects the overlapping (90% hot links)
    or disjoint route case; ``traffic`` picks the model family;
    ``traffic_params`` overrides/extends the per-model defaults.
    ``max_packets`` is the budget *per generator*.  ``seeds`` replaces
    the default per-TG seed registers ``seed + i`` with explicit
    values — the experiment runner passes independently derived stream
    seeds here (see :func:`repro.traffic.rng.derive_stream_seed`).
    """
    flows = paper_flow_pairs()
    if seeds is not None and len(seeds) != len(flows):
        raise ConfigError(
            f"expected {len(flows)} TG seeds, got {len(seeds)}"
        )
    tgs: List[TGSpec] = []
    for i, (src, dst) in enumerate(flows):
        params = _tg_params_for(traffic, load, length, dst, traffic_params)
        tgs.append(
            TGSpec(
                node=src,
                model=traffic,
                params=params,
                max_packets=max_packets,
                seed=seeds[i] if seeds is not None else seed + i,
            )
        )
    trs = [
        TRSpec(node=4 + i, kind=receptor_kind)
        for i in range(len(flows))
    ]
    return PlatformConfig(
        topology="paper",
        routing=f"paper_{routing_case}",
        buffer_depth=buffer_depth,
        tgs=tgs,
        trs=trs,
        name=f"paper6_{traffic}_{routing_case}",
    )


def generic_platform_config(
    topology: Union[str, Topology] = "mesh:3:3",
    traffic: str = "uniform",
    load: float = 0.2,
    length: int = 8,
    max_packets: Optional[int] = 1000,
    routing: str = "auto",
    receptor_kind: str = "tracedriven",
    buffer_depth: int = 4,
    arbitration: str = "round_robin",
    switching: Union[str, SwitchingMode] = SwitchingMode.WORMHOLE,
    seed: int = 1,
    traffic_params: Optional[Dict[str, Any]] = None,
    seeds: Optional[Sequence[int]] = None,
    name: Optional[str] = None,
) -> PlatformConfig:
    """Uniform-random traffic on any factory topology.

    The paper evaluates one hand-built 6-switch platform; the platform
    compiler itself accepts arbitrary switch graphs ("switch topology",
    Slide 6).  This builder opens that axis: every node of the resolved
    topology hosts one traffic generator driving uniformly random
    destinations (all other nodes) *and* one receptor, the standard
    synthetic-workload setup for fabric comparisons.

    ``routing="auto"`` picks a deadlock-free default per family: the
    cyclic fabrics (ring, spidergon, torus) take up*/down* tables —
    plain BFS shortest paths close a channel-dependency cycle there
    (for the torus the wrap-around channels do it: shortest-path
    tables pass the dependency check only on the smallest grids, and
    e.g. ``torus:4:5`` or ``torus:5:5`` cycle) — and everything else
    takes shortest paths.  Explicit ``routing`` specs (``shortest``,
    ``updown``, ``multipath[:k]``) override the choice; the
    platform's channel-dependency check still vets the result.

    Per-TG seed registers come from ``seeds`` when given, else from
    :func:`repro.traffic.rng.derive_stream_seed` so generators never
    share an LFSR stream (the additive ``seed + i`` convention of the
    paper builder makes neighbouring seeds overlap).
    """
    from repro.traffic.rng import derive_stream_seed

    topo = resolve_topology_spec(topology)
    n_nodes = topo.n_nodes
    if n_nodes < 2:
        raise ConfigError(
            f"topology {topo.name!r} has {n_nodes} node(s); uniform"
            f" traffic needs at least 2"
        )
    if routing == "auto":
        family = topo.name.rstrip("0123456789x")
        routing = (
            "updown"
            if family in ("ring", "spidergon", "torus")
            else "shortest"
        )
    if seeds is not None and len(seeds) != n_nodes:
        raise ConfigError(
            f"expected {n_nodes} TG seeds, got {len(seeds)}"
        )
    tgs: List[TGSpec] = []
    trs: List[TRSpec] = []
    for node in range(n_nodes):
        others = [d for d in range(n_nodes) if d != node]
        params = _tg_params_for(
            traffic, load, length, others, traffic_params
        )
        tgs.append(
            TGSpec(
                node=node,
                model=traffic,
                params=params,
                max_packets=max_packets,
                seed=(
                    seeds[node]
                    if seeds is not None
                    else derive_stream_seed(seed, node)
                ),
            )
        )
        trs.append(TRSpec(node=node, kind=receptor_kind))
    return PlatformConfig(
        topology=topo,
        routing=routing,
        buffer_depth=buffer_depth,
        arbitration=arbitration,
        switching=switching,
        tgs=tgs,
        trs=trs,
        name=name or f"{topo.name}_{traffic}",
    )
