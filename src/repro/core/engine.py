"""The emulation engine.

Runs a platform until its traffic budget completes (or a cycle/packet
limit is hit), measuring both the *emulated* time — cycles at the
platform clock, the quantity Slide 18 reports as "Our Emulation" — and
the *wall-clock* throughput of this software engine in emulated cycles
per second, which the speed-comparison bench contrasts with the RTL and
TLM baseline engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import EmulationError
from repro.core.platform import EmulationPlatform


@dataclass
class EngineResult:
    """Outcome of one emulation run."""

    cycles: int
    packets_sent: int
    packets_received: int
    wall_seconds: float
    f_clk_hz: float
    completed: bool  # traffic budget exhausted and network drained

    @property
    def emulated_seconds(self) -> float:
        """Time the run would take on the 50 MHz FPGA platform."""
        return self.cycles / self.f_clk_hz

    @property
    def engine_cycles_per_sec(self) -> float:
        """Measured speed of this software engine."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def cycles_per_packet(self) -> float:
        """Calibration constant for the run-time model."""
        if self.packets_received == 0:
            return 0.0
        return self.cycles / self.packets_received


class EmulationEngine:
    """Drives an :class:`~repro.core.platform.EmulationPlatform`.

    The engine owns the run loop the embedded processor's firmware
    implements on the real platform: start the control module, step
    until the stop condition, stop, and hand the platform back for
    statistics readout.
    """

    def __init__(self, platform: EmulationPlatform) -> None:
        self.platform = platform

    def run(
        self,
        max_cycles: Optional[int] = None,
        max_packets: Optional[int] = None,
        drain: bool = True,
        check_interval: int = 64,
    ) -> EngineResult:
        """Run until done (budget exhausted + drained) or a limit hits.

        ``max_packets`` stops once that many packets have been
        *received* platform-wide (the "number of sent packets" axis of
        Slide 20 is swept by setting TG budgets instead).  Completion
        checks cost Python time, so they run every ``check_interval``
        cycles.
        """
        if max_cycles is None and max_packets is None:
            budget_bounded = all(
                g.max_packets is not None
                or getattr(g.model, "exhausted", None) is not None
                for g in self.platform.generators
            )
            if not budget_bounded:
                raise EmulationError(
                    "unbounded run: no max_cycles/max_packets and at"
                    " least one generator has no packet budget"
                )
        platform = self.platform
        platform.control.start()
        start_cycle = platform.cycle
        started = time.perf_counter()
        completed = False
        since_check = 0
        last_received = platform.packets_received
        stagnant_cycles = 0
        while platform.control.running:
            platform.step()
            since_check += 1
            if max_cycles is not None and (
                platform.cycle - start_cycle
            ) >= max_cycles:
                break
            if since_check < check_interval:
                continue
            since_check = 0
            if (
                max_packets is not None
                and platform.packets_received >= max_packets
            ):
                break
            if platform.generators_done:
                if not drain:
                    completed = True
                    break
                if platform.network.is_drained:
                    completed = True
                    break
                # Deadlock guard: traffic is over but flits stopped
                # moving toward the receptors.
                received = platform.packets_received
                if received == last_received:
                    stagnant_cycles += check_interval
                    if stagnant_cycles >= 100_000:
                        raise EmulationError(
                            f"network failed to drain:"
                            f" {platform.network.in_flight_flits}"
                            f" flits stuck after traffic ended"
                            f" (possible routing deadlock)"
                        )
                else:
                    stagnant_cycles = 0
                last_received = received
        wall = time.perf_counter() - started
        platform.control.stop()
        return EngineResult(
            cycles=platform.cycle - start_cycle,
            packets_sent=platform.packets_sent,
            packets_received=platform.packets_received,
            wall_seconds=wall,
            f_clk_hz=platform.config.f_clk_hz,
            completed=completed or platform.is_done,
        )
