"""The emulation engine.

Runs a platform until its traffic budget completes (or a cycle/packet
limit is hit), measuring both the *emulated* time — cycles at the
platform clock, the quantity Slide 18 reports as "Our Emulation" — and
the *wall-clock* throughput of this software engine in emulated cycles
per second, which the speed-comparison bench contrasts with the RTL and
TLM baseline engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.errors import EmulationError, ScenarioTimeout
from repro.core.platform import EmulationPlatform
from repro.noc.network import format_parked_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.report import FaultReport
    from repro.faults.schedule import FaultSchedule

#: Sentinel "never" cycle, past any emulated horizon.
_NEVER = 1 << 62

#: Cycles between cooperative wall-clock checks of a deadlined run.
#: Reading the host clock every cycle would dominate the hot loop; at
#: tens of thousands of cycles per second this granularity bounds the
#: overshoot to well under a second while costing one comparison per
#: cycle (the same register discipline as faults and telemetry).
_WALL_CHECK_CYCLES = 4096


@dataclass
class EngineResult:
    """Outcome of one emulation run.

    ``completed`` is True only when the traffic budget is exhausted
    *and* the network drained — it is always ``budget_done and
    drained``.  A ``drain=False`` run that stops at emission end with
    flits still in flight therefore reports ``budget_done=True,
    drained=False, completed=False``; a run cut short by
    ``max_cycles``/``max_packets`` reports ``budget_done=False``.

    ``faults`` carries the degradation record of a run driven with a
    fault schedule (None on healthy runs).  ``windows`` carries the
    windowed-telemetry time series of a run driven with a
    :class:`~repro.telemetry.windows.WindowedMetrics` collector (None
    otherwise); the records are deterministic — wall-clock lives only
    in ``wall_seconds``.
    """

    cycles: int
    packets_sent: int
    packets_received: int
    wall_seconds: float
    f_clk_hz: float
    completed: bool  # budget_done and drained
    budget_done: bool = False  # every TG budget/trace exhausted
    drained: bool = False  # no flit queued, buffered or in flight
    faults: Optional["FaultReport"] = None
    windows: Optional[Tuple] = None  # WindowRecord time series

    @property
    def emulated_seconds(self) -> float:
        """Time the run would take on the 50 MHz FPGA platform."""
        return self.cycles / self.f_clk_hz

    @property
    def engine_cycles_per_sec(self) -> float:
        """Measured speed of this software engine."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def cycles_per_packet(self) -> float:
        """Calibration constant for the run-time model."""
        if self.packets_received == 0:
            return 0.0
        return self.cycles / self.packets_received


@dataclass
class DegradedResult(EngineResult):
    """Graceful-degradation outcome of a faulted run.

    Returned (instead of raising the deadlock guard's
    :class:`EmulationError`) when the run stagnates while a fault has
    been applied — the structured escalation path for unrepaired or
    unrepairable faults.  ``parked`` snapshots
    :meth:`~repro.noc.network.Network.parked_report` at the moment the
    watchdog tripped, naming every input whose wake event never came.
    """

    degraded_reason: str = ""
    parked: Tuple[dict, ...] = ()


class EmulationEngine:
    """Drives an :class:`~repro.core.platform.EmulationPlatform`.

    The engine owns the run loop the embedded processor's firmware
    implements on the real platform: start the control module, step
    until the stop condition, stop, and hand the platform back for
    statistics readout.
    """

    def __init__(
        self,
        platform: EmulationPlatform,
        faults: Optional["FaultSchedule"] = None,
        telemetry=None,
    ) -> None:
        self.platform = platform
        self.faults = faults
        #: Optional :class:`~repro.telemetry.windows.WindowedMetrics`;
        #: the run drives it at window boundaries and the result
        #: carries its records as ``EngineResult.windows``.
        self.telemetry = telemetry
        #: The live :class:`~repro.faults.injector.FaultInjector` of a
        #: faulted run.  Created on the first ``run()`` and kept, so a
        #: chunked run (``finalize=False``) resumes the schedule
        #: mid-flight instead of restarting it; checkpoint/restore
        #: captures and re-seats it.
        self._injector = None

    def run(
        self,
        max_cycles: Optional[int] = None,
        max_packets: Optional[int] = None,
        drain: bool = True,
        check_interval: int = 1,
        fast_forward: bool = True,
        stagnation_cycles: int = 100_000,
        progress=None,
        progress_interval: float = 0.5,
        finalize: bool = True,
        max_wall_seconds: Optional[float] = None,
    ) -> EngineResult:
        """Run until done (budget exhausted + drained) or a limit hits.

        ``max_packets`` stops once that many packets have been
        *received* platform-wide (the "number of sent packets" axis of
        Slide 20 is swept by setting TG budgets instead).  The stop is
        checked every cycle regardless of ``check_interval``, so the
        overshoot is bounded by the deliveries of the final cycle
        (several receptors can each complete a packet in the same
        cycle), never by the check quantisation.  The remaining
        completion counters are O(1), so the other checks default to
        every cycle (``check_interval=1``); raise it only to amortise
        the residual per-check Python cost on huge runs.

        ``fast_forward`` lets the engine jump the emulated clock over
        quiescent stretches (see
        :meth:`~repro.core.platform.EmulationPlatform.idle_fast_forward`);
        bursty and low-load workloads skip the idle majority of
        emulated time with bit-identical results.  ``stagnation_cycles``
        bounds how long the drain phase may go without a single packet
        delivery before the deadlock guard trips.

        ``progress`` is an optional callback fired with live
        :class:`~repro.telemetry.progress.ProgressSample` readings
        roughly every ``progress_interval`` wall-clock seconds (plus a
        final sample when the run stops); it is observational only and
        never perturbs the emulated schedule.  With a telemetry
        collector attached, window boundaries are checked with the
        same one-comparison-per-cycle discipline as fault events, and
        an idle fast-forward lands on a window boundary so the skipped
        windows emit as zero-delta records (parking and fast-forward
        stay fully engaged — nothing is sampled per cycle).

        ``max_wall_seconds`` arms the cooperative timeout: the loop
        re-reads the host clock every few thousand cycles and raises a
        structured :class:`~repro.core.errors.ScenarioTimeout` once
        the budget is spent.  This is what lets a sweep worker abort a
        wedged scenario *cleanly* (the supervisor's watchdog kill is
        the backstop for runs stuck outside the loop); it never
        perturbs the emulated schedule — a run that finishes in budget
        is bit-identical to an undeadlined one.

        ``finalize=False`` runs a *chunk* of a longer emulation: the
        fault report is returned live (no end-window cut) and the
        telemetry collector's partial window stays open, so a
        follow-up ``run()`` on the same engine — or on the engine
        restored from a checkpoint of this one — continues
        bit-identically to a single uninterrupted run.  Close the
        books with :meth:`finalize_run` after the last chunk.
        """
        if max_cycles is None and max_packets is None:
            budget_bounded = all(
                g.max_packets is not None
                or getattr(g.model, "exhausted", None) is not None
                for g in self.platform.generators
            )
            if not budget_bounded:
                raise EmulationError(
                    "unbounded run: no max_cycles/max_packets and at"
                    " least one generator has no packet budget"
                )
        platform = self.platform
        network = platform.network
        platform.control.start()
        start_cycle = platform.cycle
        limit_cycle = (
            None if max_cycles is None else start_cycle + max_cycles
        )
        started = time.perf_counter()  # repro: allow[wall-clock] wall-seconds telemetry of the run report; cycles are the deterministic clock
        since_check = 0
        # check_interval == 1 (the default) makes the countdown dead
        # weight: skip its three per-cycle bookkeeping ops entirely.
        counted_checks = check_interval > 1
        gens_done = False
        last_received = platform.packets_received
        last_progress_cycle = platform.cycle
        skip_idle = fast_forward and not network.sample_buffers
        # The loop body inlines platform.step (generator round + one
        # network cycle): at hundreds of thousands of cycles per
        # second, even one spare call per cycle is measurable.
        control = platform.control
        net_step = network.step
        poll_generators = platform.poll_generators
        # Fault injection: the injector asks for the cycles it needs
        # (event cycles, plus every cycle of a flaky window or an
        # unresolved recovery watch); healthy runs pay one comparison
        # per cycle.
        injector = self._injector
        fault_next = _NEVER
        if injector is not None:
            # Resuming (a later chunk of a finalize=False run, or a
            # restored checkpoint): re-derive the wake register from
            # the cycle *before* the boundary, so a flaky window or
            # recovery watch active across it still ticks at
            # start_cycle exactly as the uninterrupted loop would.
            fault_next = injector._wake_cycle(start_cycle - 1)
        elif self.faults is not None and self.faults.events:
            from repro.faults.injector import FaultInjector

            injector = self._injector = FaultInjector(
                self.faults, platform
            )
            fault_next = injector.begin(start_cycle)
        # Windowed telemetry and live progress use the same shape as
        # fault injection: a "next interesting cycle" register checked
        # once per cycle, so disabled telemetry costs one comparison
        # and enabled telemetry costs nothing between boundaries.
        telemetry = self.telemetry
        tel_next = _NEVER
        if telemetry is not None:
            tel_next = telemetry.begin(start_cycle)
        meter = None
        prog_next = _NEVER
        if progress is not None:
            from repro.telemetry.progress import ProgressMeter

            meter = ProgressMeter(
                platform,
                progress,
                interval_seconds=progress_interval,
                limit_cycle=limit_cycle,
            )
            prog_next = meter.start(start_cycle)
        # Cooperative wall-clock budget: same one-comparison register
        # shape as faults/telemetry; disabled runs never read the
        # clock.
        wall_next = _NEVER
        wall_deadline = 0.0
        if max_wall_seconds is not None:
            if max_wall_seconds < 0:
                raise EmulationError(
                    f"max_wall_seconds must be >= 0, got"
                    f" {max_wall_seconds}"
                )
            wall_deadline = started + max_wall_seconds
            wall_next = start_cycle
        degraded_reason: Optional[str] = None
        parked_snapshot: tuple = ()
        while control.running:
            now = network.cycle
            if now >= wall_next:
                elapsed = time.perf_counter() - started  # repro: allow[wall-clock] cooperative timeout check; never enters a deterministic record
                if elapsed >= max_wall_seconds:
                    raise ScenarioTimeout(
                        f"scenario exceeded its {max_wall_seconds}s"
                        f" wall-clock budget at cycle {now}"
                        f" ({elapsed:.2f}s elapsed)",
                        cycle=now,
                        elapsed=elapsed,
                    )
                wall_next = now + _WALL_CHECK_CYCLES
            if now >= tel_next:
                # Before the fault tick: a fault applied at cycle
                # ``now`` belongs to the window *starting* here, not
                # the one closing here.
                tel_next = telemetry.advance(now)
            if now >= fault_next:
                fault_next = injector.tick(now)
            if now >= prog_next:
                prog_next = meter.tick(
                    now, injector is not None and injector.faulted
                )
            if now >= platform._next_gen_poll:
                poll_generators(now)
            net_step()
            if limit_cycle is not None and network.cycle >= limit_cycle:
                break
            if (
                max_packets is not None
                and platform._packets_received >= max_packets
            ):
                # Checked every cycle: quantising this to
                # check_interval would overshoot the packet budget by
                # up to check_interval - 1 deliveries.
                break
            if counted_checks:
                since_check += 1
                if since_check < check_interval:
                    continue
                since_check = 0
            received = platform._packets_received
            if not drain:
                # Emission-phase timing: stop the moment the budgets
                # are exhausted, drained or not.  Generators cannot
                # un-finish during a run, so the scan stops paying once
                # it has returned True.
                if not gens_done:
                    gens_done = platform.generators_done
                if gens_done:
                    break
            if network._in_flight_flits == 0:
                # Quiescent fabric: the (rare) slow-path checks.
                last_received = received
                last_progress_cycle = network.cycle
                if not gens_done:
                    gens_done = platform.generators_done
                if gens_done and network.is_drained:
                    break
                ff_limit = limit_cycle
                if fault_next < _NEVER and (
                    ff_limit is None or fault_next < ff_limit
                ):
                    # Never jump the clock over a pending fault event.
                    ff_limit = fault_next
                if tel_next < _NEVER:
                    # Telemetry on: land the jump on a window boundary
                    # so the advance() at the landing cycle emits the
                    # fully-skipped windows as zero-delta records; the
                    # residual sub-window idle stretch is jumped by
                    # the next fast-forward, which crosses no boundary
                    # and goes un-rounded.
                    target = platform._next_gen_poll
                    if ff_limit is not None and ff_limit < target:
                        target = ff_limit
                    ff_limit = telemetry.ff_landing(target)
                if skip_idle and platform.idle_fast_forward(ff_limit):
                    # The jump is idle time, not stagnation: restart
                    # the progress clock at the landing cycle.
                    last_progress_cycle = network.cycle
                    if (
                        limit_cycle is not None
                        and network.cycle >= limit_cycle
                    ):
                        break
            elif received != last_received:
                last_received = received
                last_progress_cycle = network.cycle
            elif (
                network.cycle - last_progress_cycle
                >= stagnation_cycles
            ):
                # Deadlock guard: flits in flight but none delivered
                # for a whole stagnation window.
                parked_snapshot = tuple(network.parked_report())
                detail = format_parked_report(list(parked_snapshot))
                if injector is not None and injector.faulted:
                    # Watchdog escalation: stagnating with a fault
                    # applied is degradation, not a framework bug —
                    # report it structurally instead of raising.
                    degraded_reason = (
                        f"{network.in_flight_flits} flits stuck"
                        f" without progress for {stagnation_cycles}"
                        f" cycles after fault injection; {detail}"
                    )
                    break
                raise EmulationError(
                    f"network failed to drain:"
                    f" {network.in_flight_flits} flits stuck"
                    f" without progress for {stagnation_cycles}"
                    f" cycles (possible routing deadlock); {detail}"
                )
        wall = time.perf_counter() - started  # repro: allow[wall-clock] wall-seconds telemetry of the run report; cycles are the deterministic clock
        platform.control.stop()
        budget_done = gens_done or platform.generators_done
        drained = network.is_drained
        fault_report = None
        if injector is not None:
            if finalize:
                fault_report = injector.finalize(
                    network.cycle,
                    degraded=degraded_reason is not None,
                    reason=degraded_reason,
                )
            else:
                fault_report = injector.report
        windows = None
        if telemetry is not None:
            if finalize:
                telemetry.finish(network.cycle)
            windows = tuple(telemetry.records)
        if meter is not None:
            meter.finish(
                network.cycle,
                injector is not None and injector.faulted,
            )
        if degraded_reason is not None:
            return DegradedResult(
                cycles=platform.cycle - start_cycle,
                packets_sent=platform.packets_sent,
                packets_received=platform.packets_received,
                wall_seconds=wall,
                f_clk_hz=platform.config.f_clk_hz,
                completed=False,
                budget_done=budget_done,
                drained=drained,
                faults=fault_report,
                windows=windows,
                degraded_reason=degraded_reason,
                parked=parked_snapshot,
            )
        return EngineResult(
            cycles=platform.cycle - start_cycle,
            packets_sent=platform.packets_sent,
            packets_received=platform.packets_received,
            wall_seconds=wall,
            f_clk_hz=platform.config.f_clk_hz,
            completed=budget_done and drained,
            budget_done=budget_done,
            drained=drained,
            faults=fault_report,
            windows=windows,
        )

    def finalize_run(self, result: EngineResult) -> EngineResult:
        """Close fault/telemetry bookkeeping after ``finalize=False``
        chunks, without emulating another cycle.

        Cuts the fault report's end window and closes the telemetry
        collector's partial window at the current cycle — exactly
        what a ``finalize=True`` run does at its own end — and
        returns ``result`` with the finalized report and window tuple
        swapped in.
        """
        from dataclasses import replace

        cycle = self.platform.cycle
        fault_report = result.faults
        if self._injector is not None:
            degraded = getattr(result, "degraded_reason", None)
            fault_report = self._injector.finalize(
                cycle,
                degraded=degraded is not None,
                reason=degraded,
            )
        windows = result.windows
        if self.telemetry is not None:
            self.telemetry.finish(cycle)
            windows = tuple(self.telemetry.records)
        return replace(result, faults=fault_report, windows=windows)
