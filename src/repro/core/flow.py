"""The NoC emulation flow (Slide 14).

Six steps::

    1) Platform compilation   -- elaborate the hardware (HW, cached)
    2) Physical synthesis     -- FPGA map/place model   (HW, cached)
    3) Platform initialization-- write software settings over the bus
    4) Software compilation   -- build the run plan (firmware build)
    5) Emulation on FPGA      -- run the engine
    6) Final report           -- monitor readout

The central claim of the flow (Slide 13) is that it "avoids often
hardware re-synthesis": changing traffic parameters, seeds, packet
budgets or routing tables only repeats steps 3-6.  The flow enforces
this by caching steps 1-2 keyed on the configuration's
:meth:`~repro.core.config.PlatformConfig.hardware_signature`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import PlatformConfig
from repro.core.devices import to_q16
from repro.core.engine import EmulationEngine, EngineResult
from repro.core.monitor import Monitor
from repro.core.platform import EmulationPlatform, build_platform
from repro.core.processor import Processor
from repro.fpga.synthesis import SynthesisReport, synthesize
from repro.traffic.burst import BurstTraffic
from repro.traffic.poisson import PoissonTraffic


@dataclass
class FlowReport:
    """Everything one pass through the flow produced."""

    config_name: str
    resynthesized: bool
    synthesis: SynthesisReport
    result: EngineResult
    report_text: str
    step_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def hardware_steps_skipped(self) -> bool:
        return not self.resynthesized


class EmulationFlow:
    """Runs configurations through the six-step flow with HW caching."""

    def __init__(self) -> None:
        self._hw_cache: Dict[
            Tuple, Tuple[EmulationPlatform, SynthesisReport]
        ] = {}
        self.synthesis_runs = 0  # how many times step 2 really ran

    # ------------------------------------------------------------------
    # Steps 1-2: hardware (cached)
    # ------------------------------------------------------------------
    def _hardware(
        self, config: PlatformConfig
    ) -> Tuple[EmulationPlatform, SynthesisReport, bool]:
        key = config.hardware_signature()
        if key in self._hw_cache:
            platform, synthesis = self._hw_cache[key]
            # Same bitstream, new software: rebuild the platform object
            # (the software settings differ) but do NOT re-synthesise.
            platform = build_platform(config)
            return platform, synthesis, False
        platform = build_platform(config)  # step 1
        synthesis = synthesize(config)  # step 2
        self.synthesis_runs += 1
        self._hw_cache[key] = (platform, synthesis)
        return platform, synthesis, True

    # ------------------------------------------------------------------
    # Step 3: platform initialisation over the bus
    # ------------------------------------------------------------------
    def _initialise(
        self, platform: EmulationPlatform, config: PlatformConfig
    ) -> Processor:
        processor = Processor(platform)
        for spec in config.tgs:
            params: Dict[int, int] = {}
            generator = next(
                g for g in platform.generators if g.node == spec.node
            )
            model = generator.model
            # Mirror the live model's probability parameters into their
            # Q16 registers, exercising the bus path end to end.
            if isinstance(model, BurstTraffic):
                params[1] = to_q16(min(1.0, model.p_on))
                params[2] = to_q16(min(1.0, model.p_off))
            elif isinstance(model, PoissonTraffic):
                params[1] = to_q16(min(1.0, model.rate))
            processor.initialise_generator(
                spec.node,
                seed=spec.seed,
                max_packets=spec.max_packets or 0,
                params=params,
            )
        processor.reset_statistics()
        return processor

    # ------------------------------------------------------------------
    # The whole flow
    # ------------------------------------------------------------------
    def run(
        self,
        config: PlatformConfig,
        max_cycles: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> FlowReport:
        """Steps 1-6 for one configuration."""
        steps: Dict[str, float] = {}

        t0 = time.perf_counter()  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)
        platform, synthesis, resynthesized = self._hardware(config)
        steps["1-2 hardware"] = time.perf_counter() - t0  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)

        t0 = time.perf_counter()  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)
        self._initialise(platform, config)
        steps["3 initialisation"] = time.perf_counter() - t0  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)

        t0 = time.perf_counter()  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)
        engine = EmulationEngine(platform)  # step 4: the run plan
        steps["4 software"] = time.perf_counter() - t0  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)

        t0 = time.perf_counter()  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)
        result = engine.run(
            max_cycles=max_cycles, max_packets=max_packets
        )
        steps["5 emulation"] = time.perf_counter() - t0  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)

        t0 = time.perf_counter()  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)
        report_text = Monitor(platform).final_report(result)
        steps["6 report"] = time.perf_counter() - t0  # repro: allow[wall-clock] per-step flow timing telemetry (FlowReport.steps)

        return FlowReport(
            config_name=config.name,
            resynthesized=resynthesized,
            synthesis=synthesis,
            result=result,
            report_text=report_text,
            step_seconds=steps,
        )

    def run_sweep(
        self,
        configs: List[PlatformConfig],
        max_cycles: Optional[int] = None,
    ) -> List[FlowReport]:
        """Run several configurations, reusing hardware where possible.

        This is the workflow the flow was designed for: a parameter
        sweep that synthesises once and re-runs software steps many
        times.
        """
        return [self.run(c, max_cycles=max_cycles) for c in configs]
