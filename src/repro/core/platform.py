"""The emulation platform.

Assembles the hardware side of the framework (Slide 8): the network of
switches, one TG device per traffic generator, one TR device per
receptor, and the control module, all attached to the bus fabric so the
processor "can access each component by accessing their specific
addresses".  :func:`build_platform` is the platform-compilation step of
the flow: it elaborates a :class:`~repro.core.config.PlatformConfig`
into a runnable platform.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.bus import BusFabric
from repro.core.config import (
    PlatformConfig,
    TGSpec,
    TRSpec,
    make_traffic_model,
)
from repro.core.control import ControlDevice
from repro.core.devices import TGDevice, TRDevice
from repro.core.errors import ConfigError
from repro.noc.network import Network
from repro.noc.topology import Topology
from repro.receptors.base import TrafficReceptor
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor
from repro.stats.congestion import network_congestion_rate
from repro.traffic.generator import NEVER_POLL, TrafficGenerator


def _build_receptor(spec: TRSpec, n_nodes: int) -> TrafficReceptor:
    params = dict(spec.params)
    if spec.kind == "stochastic":
        params.setdefault("n_sources", n_nodes)
        return StochasticReceptor(spec.node, **params)
    return TraceDrivenReceptor(spec.node, **params)


class EmulationPlatform:
    """A fully elaborated, runnable emulation platform.

    Use :func:`build_platform` (or the :class:`~repro.core.flow.
    EmulationFlow`) to construct one.  The platform advances one clock
    cycle per :meth:`step`: traffic generators poll their models, then
    the network moves flits, then receptors see completed packets
    (their callbacks fire from within the network's ejection phase).
    """

    def __init__(
        self,
        config: PlatformConfig,
        topology: Topology,
        network: Network,
        generators: List[TrafficGenerator],
        receptors: List[TrafficReceptor],
    ) -> None:
        self.config = config
        self.topology = topology
        self.network = network
        self.generators = generators
        self.receptors = receptors
        self.fabric = BusFabric()
        self.control = ControlDevice()
        self.tg_devices: List[TGDevice] = []
        self.tr_devices: List[TRDevice] = []
        # O(1) platform-wide progress counters, maintained by delta
        # hooks on every generator/receptor (so resets through any
        # path — engine, bus registers, reset_statistics — stay
        # consistent) instead of per-query sum() scans.
        self._packets_sent = sum(g.packets_sent for g in generators)
        self._packets_received = sum(
            r.packets_received for r in receptors
        )
        for index, generator in enumerate(generators):
            generator.on_count = self._count_sent
            generator.on_wake = self._make_gen_wake(index)
            # The platform clock enables backpressure parking: a
            # generator facing a full NI queue stops being polled (the
            # NI drain watch wakes it) and bulk-settles its stall
            # ticks; control operations use the clock to settle
            # mid-stretch.  Standalone generators (no clock) keep the
            # per-cycle behaviour.
            generator._clock = self._now_cycle
        for receptor in receptors:
            receptor.on_count = self._count_received
        # Earliest cycle at which any generator could act (emit or
        # count backpressure); whole generator rounds are skipped
        # until then.  ``_gen_next`` caches the same bound *per
        # generator*, so a mandatory round steps only the generators
        # actually due rather than the whole population.  Control
        # operations invalidate both through the wake hook.
        self._next_gen_poll = 0
        self._gen_next = [0] * len(generators)
        self._attach_devices()

    def _now_cycle(self) -> int:
        return self.network.cycle

    def _count_sent(self, delta: int) -> None:
        self._packets_sent += delta

    def _count_received(self, delta: int) -> None:
        self._packets_received += delta

    def _make_gen_wake(self, index: int):
        """Per-generator wake: only the woken generator re-polls.

        A backpressure drain watch or control operation changes one
        generator's schedule; invalidating only its cache keeps the
        other generators sleeping through their silent stretches
        instead of re-stepping the whole population on every wake.
        """

        def wake() -> None:
            self._next_gen_poll = 0
            self._gen_next[index] = 0

        return wake

    def _attach_devices(self) -> None:
        self.fabric.attach(self.control, bus=0)
        self.control.get_cycles = lambda: self.network.cycle
        self.control.get_sent = lambda: self.packets_sent
        self.control.get_received = lambda: self.packets_received
        self.control.is_done = lambda: self.is_done
        self.control.on_stat_reset = self.reset_statistics
        for generator in self.generators:
            device = TGDevice(f"tg{generator.node}", generator)
            self.fabric.attach(device, bus=0)
            self.tg_devices.append(device)
        for receptor in self.receptors:
            device = TRDevice(f"tr{receptor.node}", receptor)
            self.fabric.attach(device, bus=0)
            self.tr_devices.append(device)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the platform by one emulated clock cycle."""
        network = self.network
        now = network.cycle
        if now >= self._next_gen_poll:
            self.poll_generators(now)
        network.step()

    def poll_generators(self, now: int) -> None:
        """One generator round, rescheduling the next mandatory round.

        Generators whose model is contractually silent and whose NI
        queue cannot backpressure are skipped until the earliest cycle
        one of them could act (see
        :meth:`~repro.traffic.generator.TrafficGenerator.next_poll_cycle`);
        the engine's hot loop calls this only when that cycle arrives,
        and within a round only the generators actually due are
        stepped (``_gen_next`` holds each generator's own bound; any
        schedule change funnels through ``TrafficGenerator.wake`` and
        resets the caches).
        """
        nxt = None
        gen_next = self._gen_next
        k = 0
        for generator in self.generators:
            t = gen_next[k]
            if t <= now:
                generator.step(now)
                t = generator.next_poll_cycle(now + 1)
                gen_next[k] = t
            if nxt is None or t < nxt:
                nxt = t
            k += 1
        self._next_gen_poll = now + 1 if nxt is None else nxt

    def step_reference(self) -> None:
        """One cycle via the scan-everything reference dataflow.

        Identical semantics to :meth:`step` but driving
        :meth:`~repro.noc.network.Network.step_reference`; the parity
        tests and the kernel speed bench co-simulate the two paths.
        """
        network = self.network
        now = network.cycle
        if now >= self._next_gen_poll:
            self.poll_generators(now)
        network.step_reference()

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    @property
    def cycle(self) -> int:
        return self.network.cycle

    def idle_fast_forward(
        self, limit_cycle: Optional[int] = None
    ) -> int:
        """Jump over idle time when the fabric is quiescent.

        When no flit is queued, buffered or on a wire, nothing can
        happen until a traffic model's next emission: the platform
        jumps ``network.cycle`` straight there (clamped to
        ``limit_cycle``) instead of spinning empty cycles.  Returns the
        number of cycles skipped (0 when the fabric is busy, an
        emission is due now, or nothing will ever emit again).  Cycle
        accuracy is preserved because every skipped cycle is one where
        all generator polls are contractually silent (see
        :meth:`~repro.traffic.base.TrafficModel.next_emission_cycle`)
        and the network state cannot change.  Disabled under
        ``sample_buffers``, whose per-cycle occupancy sampling must
        observe every idle cycle — that is the documented cost of
        per-cycle sampling, and the reason the windowed telemetry
        (:class:`repro.telemetry.windows.WindowedMetrics`) reads
        boundary snapshots instead: it keeps this fast-forward (and
        input parking) fully engaged, with the engine merely landing
        each jump on a window boundary so skipped windows emit as
        zero-delta records.
        """
        network = self.network
        if network.sample_buffers or network._in_flight_flits:
            return 0
        # With the fabric quiescent there is no backpressure, so the
        # next generator poll cycle *is* the next possible emission.
        target = self._next_gen_poll
        if target >= NEVER_POLL:
            return 0  # no generator will ever emit again
        now = network.cycle
        if limit_cycle is not None and target > limit_cycle:
            target = limit_cycle
        if target <= now:
            return 0
        # Credits still returning upstream are the only scheduled
        # events a quiescent fabric can hold; settle the ones the jump
        # would skip over (invisible until the next flit moves).
        network._flush_credits_until(target)
        network.cycle = target
        return target - now

    # ------------------------------------------------------------------
    # Progress and aggregate statistics
    # ------------------------------------------------------------------
    @property
    def packets_sent(self) -> int:
        return self._packets_sent

    @property
    def packets_received(self) -> int:
        return self._packets_received

    @property
    def generators_done(self) -> bool:
        """True when every TG has exhausted its packet budget or trace."""
        for generator in self.generators:
            if generator.max_packets is None:
                model = generator.model
                exhausted = getattr(model, "exhausted", False)
                if not exhausted:
                    return False
            elif not generator.done:
                return False
        return True

    @property
    def is_done(self) -> bool:
        """All traffic emitted and the network fully drained."""
        return self.generators_done and self.network.is_drained

    def mean_latency(self) -> float:
        """Mean packet latency over all trace-driven receptors."""
        total, count = 0, 0
        for receptor in self.receptors:
            if isinstance(receptor, TraceDrivenReceptor):
                total += receptor.latency.total_latency
                count += receptor.latency.count
        return total / count if count else 0.0

    def max_latency(self) -> int:
        peaks = [
            r.latency.max_latency
            for r in self.receptors
            if isinstance(r, TraceDrivenReceptor)
            and r.latency.max_latency is not None
        ]
        return max(peaks) if peaks else 0

    def congestion_rate(self) -> float:
        """Network-wide blocked-attempt fraction (Slide 21 metric)."""
        return network_congestion_rate(self.network)

    def total_stall_cycles(self) -> int:
        return sum(
            r.congestion.total_stall_cycles
            for r in self.receptors
            if isinstance(r, TraceDrivenReceptor)
        )

    def hot_link_loads(self) -> Dict[str, float]:
        """Utilisation of every inter-switch link, keyed "a->b"."""
        return {
            f"{a}->{b}": load
            for (a, b), load in self.network.link_loads().items()
        }

    def reset_statistics(self) -> None:
        """Clear all statistics without touching configuration."""
        self.network.reset_stats()
        for receptor in self.receptors:
            receptor.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EmulationPlatform({self.config.name!r},"
            f" switches={self.topology.n_switches},"
            f" tg={len(self.generators)}, tr={len(self.receptors)})"
        )


def build_platform(config: PlatformConfig) -> EmulationPlatform:
    """Platform compilation: elaborate a config into a platform.

    Validates that TGs/TRs sit on existing nodes, that at most one
    device occupies each node side, and that the routing tables cover
    every (generator, destination) pair before anything runs.
    """
    topology = config.resolve_topology()
    routing = config.resolve_routing(topology)
    network = Network(
        topology,
        routing,
        buffer_depth=config.buffer_depth,
        arbitration=config.arbitration,
        mode=config.switching,
        sample_buffers=config.sample_buffers,
    )
    if not config.tgs:
        raise ConfigError("platform has no traffic generators")
    seen_tg_nodes = set()
    generators: List[TrafficGenerator] = []
    for spec in config.tgs:
        if spec.node >= topology.n_nodes:
            raise ConfigError(
                f"TG node {spec.node} does not exist"
                f" (topology has {topology.n_nodes} nodes)"
            )
        if spec.node in seen_tg_nodes:
            raise ConfigError(
                f"two traffic generators on node {spec.node}"
            )
        seen_tg_nodes.add(spec.node)
        model = make_traffic_model(spec)
        generators.append(
            TrafficGenerator(
                spec.node,
                model,
                network.nis[spec.node],
                max_packets=spec.max_packets,
                queue_limit=spec.queue_limit,
            )
        )
    seen_tr_nodes = set()
    receptors: List[TrafficReceptor] = []
    for spec in config.trs:
        if spec.node >= topology.n_nodes:
            raise ConfigError(
                f"TR node {spec.node} does not exist"
                f" (topology has {topology.n_nodes} nodes)"
            )
        if spec.node in seen_tr_nodes:
            raise ConfigError(f"two receptors on node {spec.node}")
        seen_tr_nodes.add(spec.node)
        receptor = _build_receptor(spec, topology.n_nodes)
        receptor.attach(network.rx[spec.node])
        receptors.append(receptor)
    _validate_routes(topology, routing, config)
    if config.check_deadlock:
        _validate_deadlock_freedom(topology, routing, config)
    return EmulationPlatform(
        config, topology, network, generators, receptors
    )


def _validate_deadlock_freedom(topology, routing, config) -> None:
    """Refuse routing tables whose channel dependencies can cycle."""
    from repro.noc.deadlock import DeadlockError, assert_deadlock_free
    from repro.traffic.base import DestinationChooser

    destinations = set()
    for spec in config.tgs:
        dst = spec.params.get("dst")
        if dst is None:
            continue
        if isinstance(dst, DestinationChooser):
            destinations.update(dst.destinations())
        elif isinstance(dst, int):
            destinations.add(dst)
        else:
            destinations.update(dst)
    if not destinations:
        return  # pure trace objects: destinations unknown statically
    try:
        assert_deadlock_free(topology, routing, sorted(destinations))
    except DeadlockError as exc:
        raise ConfigError(str(exc)) from exc


def _validate_routes(topology, routing, config: PlatformConfig) -> None:
    """Check a route exists from every TG toward its destinations."""
    from repro.traffic.base import DestinationChooser

    for spec in config.tgs:
        params = spec.params
        dst = params.get("dst")
        if dst is None:
            continue  # trace objects carry their own destinations
        if isinstance(dst, DestinationChooser):
            destinations = dst.destinations()
        elif isinstance(dst, int):
            destinations = (dst,)
        else:
            destinations = tuple(dst)
        switch = topology.switch_of_node(spec.node)
        for destination in destinations:
            if not routing.ports_for(switch, destination):
                raise ConfigError(
                    f"routing has no entry at switch {switch} for"
                    f" destination node {destination} (TG on node"
                    f" {spec.node})"
                )
