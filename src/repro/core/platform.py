"""The emulation platform.

Assembles the hardware side of the framework (Slide 8): the network of
switches, one TG device per traffic generator, one TR device per
receptor, and the control module, all attached to the bus fabric so the
processor "can access each component by accessing their specific
addresses".  :func:`build_platform` is the platform-compilation step of
the flow: it elaborates a :class:`~repro.core.config.PlatformConfig`
into a runnable platform.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.bus import BusFabric
from repro.core.config import (
    PlatformConfig,
    TGSpec,
    TRSpec,
    make_traffic_model,
)
from repro.core.control import ControlDevice
from repro.core.devices import TGDevice, TRDevice
from repro.core.errors import ConfigError
from repro.noc.network import Network
from repro.noc.topology import Topology
from repro.receptors.base import TrafficReceptor
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor
from repro.stats.congestion import network_congestion_rate
from repro.traffic.generator import TrafficGenerator


def _build_receptor(spec: TRSpec, n_nodes: int) -> TrafficReceptor:
    params = dict(spec.params)
    if spec.kind == "stochastic":
        params.setdefault("n_sources", n_nodes)
        return StochasticReceptor(spec.node, **params)
    return TraceDrivenReceptor(spec.node, **params)


class EmulationPlatform:
    """A fully elaborated, runnable emulation platform.

    Use :func:`build_platform` (or the :class:`~repro.core.flow.
    EmulationFlow`) to construct one.  The platform advances one clock
    cycle per :meth:`step`: traffic generators poll their models, then
    the network moves flits, then receptors see completed packets
    (their callbacks fire from within the network's ejection phase).
    """

    def __init__(
        self,
        config: PlatformConfig,
        topology: Topology,
        network: Network,
        generators: List[TrafficGenerator],
        receptors: List[TrafficReceptor],
    ) -> None:
        self.config = config
        self.topology = topology
        self.network = network
        self.generators = generators
        self.receptors = receptors
        self.fabric = BusFabric()
        self.control = ControlDevice()
        self.tg_devices: List[TGDevice] = []
        self.tr_devices: List[TRDevice] = []
        self._attach_devices()

    def _attach_devices(self) -> None:
        self.fabric.attach(self.control, bus=0)
        self.control.get_cycles = lambda: self.network.cycle
        self.control.get_sent = lambda: self.packets_sent
        self.control.get_received = lambda: self.packets_received
        self.control.is_done = lambda: self.is_done
        self.control.on_stat_reset = self.reset_statistics
        for generator in self.generators:
            device = TGDevice(f"tg{generator.node}", generator)
            self.fabric.attach(device, bus=0)
            self.tg_devices.append(device)
        for receptor in self.receptors:
            device = TRDevice(f"tr{receptor.node}", receptor)
            self.fabric.attach(device, bus=0)
            self.tr_devices.append(device)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the platform by one emulated clock cycle."""
        now = self.network.cycle
        for generator in self.generators:
            generator.step(now)
        self.network.step()

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    @property
    def cycle(self) -> int:
        return self.network.cycle

    # ------------------------------------------------------------------
    # Progress and aggregate statistics
    # ------------------------------------------------------------------
    @property
    def packets_sent(self) -> int:
        return sum(g.packets_sent for g in self.generators)

    @property
    def packets_received(self) -> int:
        return sum(r.packets_received for r in self.receptors)

    @property
    def generators_done(self) -> bool:
        """True when every TG has exhausted its packet budget or trace."""
        for generator in self.generators:
            if generator.max_packets is None:
                model = generator.model
                exhausted = getattr(model, "exhausted", False)
                if not exhausted:
                    return False
            elif not generator.done:
                return False
        return True

    @property
    def is_done(self) -> bool:
        """All traffic emitted and the network fully drained."""
        return self.generators_done and self.network.is_drained

    def mean_latency(self) -> float:
        """Mean packet latency over all trace-driven receptors."""
        total, count = 0, 0
        for receptor in self.receptors:
            if isinstance(receptor, TraceDrivenReceptor):
                total += receptor.latency.total_latency
                count += receptor.latency.count
        return total / count if count else 0.0

    def max_latency(self) -> int:
        peaks = [
            r.latency.max_latency
            for r in self.receptors
            if isinstance(r, TraceDrivenReceptor)
            and r.latency.max_latency is not None
        ]
        return max(peaks) if peaks else 0

    def congestion_rate(self) -> float:
        """Network-wide blocked-attempt fraction (Slide 21 metric)."""
        return network_congestion_rate(self.network)

    def total_stall_cycles(self) -> int:
        return sum(
            r.congestion.total_stall_cycles
            for r in self.receptors
            if isinstance(r, TraceDrivenReceptor)
        )

    def hot_link_loads(self) -> Dict[str, float]:
        """Utilisation of every inter-switch link, keyed "a->b"."""
        return {
            f"{a}->{b}": load
            for (a, b), load in self.network.link_loads().items()
        }

    def reset_statistics(self) -> None:
        """Clear all statistics without touching configuration."""
        self.network.reset_stats()
        for receptor in self.receptors:
            receptor.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EmulationPlatform({self.config.name!r},"
            f" switches={self.topology.n_switches},"
            f" tg={len(self.generators)}, tr={len(self.receptors)})"
        )


def build_platform(config: PlatformConfig) -> EmulationPlatform:
    """Platform compilation: elaborate a config into a platform.

    Validates that TGs/TRs sit on existing nodes, that at most one
    device occupies each node side, and that the routing tables cover
    every (generator, destination) pair before anything runs.
    """
    topology = config.resolve_topology()
    routing = config.resolve_routing(topology)
    network = Network(
        topology,
        routing,
        buffer_depth=config.buffer_depth,
        arbitration=config.arbitration,
        mode=config.switching,
        sample_buffers=config.sample_buffers,
    )
    if not config.tgs:
        raise ConfigError("platform has no traffic generators")
    seen_tg_nodes = set()
    generators: List[TrafficGenerator] = []
    for spec in config.tgs:
        if spec.node >= topology.n_nodes:
            raise ConfigError(
                f"TG node {spec.node} does not exist"
                f" (topology has {topology.n_nodes} nodes)"
            )
        if spec.node in seen_tg_nodes:
            raise ConfigError(
                f"two traffic generators on node {spec.node}"
            )
        seen_tg_nodes.add(spec.node)
        model = make_traffic_model(spec)
        generators.append(
            TrafficGenerator(
                spec.node,
                model,
                network.nis[spec.node],
                max_packets=spec.max_packets,
                queue_limit=spec.queue_limit,
            )
        )
    seen_tr_nodes = set()
    receptors: List[TrafficReceptor] = []
    for spec in config.trs:
        if spec.node >= topology.n_nodes:
            raise ConfigError(
                f"TR node {spec.node} does not exist"
                f" (topology has {topology.n_nodes} nodes)"
            )
        if spec.node in seen_tr_nodes:
            raise ConfigError(f"two receptors on node {spec.node}")
        seen_tr_nodes.add(spec.node)
        receptor = _build_receptor(spec, topology.n_nodes)
        receptor.attach(network.rx[spec.node])
        receptors.append(receptor)
    _validate_routes(topology, routing, config)
    if config.check_deadlock:
        _validate_deadlock_freedom(topology, routing, config)
    return EmulationPlatform(
        config, topology, network, generators, receptors
    )


def _validate_deadlock_freedom(topology, routing, config) -> None:
    """Refuse routing tables whose channel dependencies can cycle."""
    from repro.noc.deadlock import DeadlockError, assert_deadlock_free
    from repro.traffic.base import DestinationChooser

    destinations = set()
    for spec in config.tgs:
        dst = spec.params.get("dst")
        if dst is None:
            continue
        if isinstance(dst, DestinationChooser):
            destinations.update(dst.destinations())
        elif isinstance(dst, int):
            destinations.add(dst)
        else:
            destinations.update(dst)
    if not destinations:
        return  # pure trace objects: destinations unknown statically
    try:
        assert_deadlock_free(topology, routing, sorted(destinations))
    except DeadlockError as exc:
        raise ConfigError(str(exc)) from exc


def _validate_routes(topology, routing, config: PlatformConfig) -> None:
    """Check a route exists from every TG toward its destinations."""
    from repro.traffic.base import DestinationChooser

    for spec in config.tgs:
        params = spec.params
        dst = params.get("dst")
        if dst is None:
            continue  # trace objects carry their own destinations
        if isinstance(dst, DestinationChooser):
            destinations = dst.destinations()
        elif isinstance(dst, int):
            destinations = (dst,)
        else:
            destinations = tuple(dst)
        switch = topology.switch_of_node(spec.node)
        for destination in destinations:
            if not routing.ports_for(switch, destination):
                raise ConfigError(
                    f"routing has no entry at switch {switch} for"
                    f" destination node {destination} (TG on node"
                    f" {spec.node})"
                )
