"""Traffic generator and receptor devices (the memory-mapped shells).

Slide 10: a TG is "a bench of registers for traffic parameterization
[and] random initialization, a packet generator ... and a network
interface".  The packet generator and NI live in ``repro.traffic`` and
``repro.noc``; this module provides the register bench on top, so the
processor configures and observes every unit purely through bus
accesses — which is what lets parameter changes skip re-synthesis.

Probabilities and rates cross the bus in Q16 fixed point (16 fractional
bits), as a hardware register bank would carry them.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bus import Device
from repro.core.errors import EmulationError
from repro.receptors.base import TrafficReceptor
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor
from repro.traffic.burst import BurstTraffic
from repro.traffic.generator import TrafficGenerator
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.poisson import PoissonTraffic
from repro.traffic.trace import TraceTraffic
from repro.traffic.uniform import UniformTraffic

Q16 = 1 << 16

#: MODEL_TYPE register encoding.
MODEL_CODES = {
    UniformTraffic: 1,
    BurstTraffic: 2,
    PoissonTraffic: 3,
    OnOffTraffic: 4,
    TraceTraffic: 5,
}

TG_CTRL_ENABLE = 1 << 0
TG_CTRL_RESET = 1 << 1


def to_q16(value: float) -> int:
    """Encode a fraction in [0, 1] as a Q16 register value."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"Q16 fraction must be in [0, 1], got {value}")
    return round(value * Q16)


def from_q16(raw: int) -> float:
    """Decode a Q16 register value into a float fraction."""
    return (raw & 0xFFFFFFFF) / Q16


class TGDevice(Device):
    """Register bench of one traffic generator.

    ========== ==== ==================================================
    register   mode purpose
    ========== ==== ==================================================
    CTRL       rw   bit 0 enable; bit 1 reset (self-clearing)
    SEED       rw   random-initialisation register (applied on reset)
    MAX_PKTS   rw   packet budget (0 = unlimited)
    MODEL_TYPE ro   traffic model code (see MODEL_CODES)
    PARAM0..2  rw   model parameters (meaning depends on the model)
    SENT       ro   packets emitted so far
    FLITS      ro   flits emitted so far
    BACKPRES   ro   cycles stalled on a full NI queue
    ========== ==== ==================================================

    Parameter register meaning per model:

    * uniform: PARAM0 = packet length, PARAM1 = interval (cycles)
    * burst:   PARAM0 = packet length, PARAM1 = p_on (Q16),
      PARAM2 = p_off (Q16)
    * poisson: PARAM0 = packet length, PARAM1 = rate (Q16 pkts/cycle)
    * onoff:   PARAM0 = packet length, PARAM1 = packets/burst,
      PARAM2 = gap (cycles)
    * trace:   parameters are read-only (PARAM0 = trace length)
    """

    kind = "tg"

    def __init__(self, name: str, generator: TrafficGenerator) -> None:
        super().__init__(name)
        self.generator = generator
        model = generator.model
        self._model_code = MODEL_CODES.get(type(model), 0)
        bank = self.bank
        bank.define("CTRL", value=TG_CTRL_ENABLE, on_write=self._write_ctrl)
        bank.define("SEED", value=model._seed & 0xFFFFFFFF)
        bank.define(
            "MAX_PKTS",
            value=generator.max_packets or 0,
            on_write=self._write_max_packets,
        )
        bank.define(
            "MODEL_TYPE", value=self._model_code, writable=False
        )
        for i in range(3):
            bank.define(
                f"PARAM{i}",
                value=self._param_read(i),
                on_write=lambda v, _i=i: self._write_param(_i, v),
            )
        bank.define(
            "SENT",
            writable=False,
            on_read=lambda: self.generator.packets_sent,
        )
        bank.define(
            "FLITS",
            writable=False,
            on_read=lambda: self.generator.flits_sent,
        )
        bank.define(
            "BACKPRES",
            writable=False,
            on_read=lambda: self.generator.backpressure_cycles,
        )

    # ------------------------------------------------------------------
    # Register behaviour
    # ------------------------------------------------------------------
    def _write_ctrl(self, value: int) -> None:
        if value & TG_CTRL_ENABLE:
            self.generator.enable()
        else:
            self.generator.disable()
        if value & TG_CTRL_RESET:
            self.generator.reset(seed=self.bank["SEED"].read())
            self.bank["CTRL"].poke(value & ~TG_CTRL_RESET)

    def _write_max_packets(self, value: int) -> None:
        self.generator.max_packets = value if value else None
        # A raised budget can revive a "done" generator; drop any
        # cached poll schedule that assumed it finished.
        self.generator.wake()

    def _param_read(self, index: int) -> int:
        model = self.generator.model
        if isinstance(model, UniformTraffic):
            if index == 0:
                return model._length_range[0]
            if index == 1:
                return model._interval_range[0]
        elif isinstance(model, BurstTraffic):
            if index == 0:
                return model.length
            if index == 1:
                return to_q16(model.p_on)
            if index == 2:
                return to_q16(model.p_off)
        elif isinstance(model, PoissonTraffic):
            if index == 0:
                return model.length
            if index == 1:
                return to_q16(model.rate)
        elif isinstance(model, OnOffTraffic):
            if index == 0:
                return model.length
            if index == 1:
                return model.packets_per_burst
            if index == 2:
                return model.gap
        elif isinstance(model, TraceTraffic):
            if index == 0:
                return len(model.trace)
        return 0

    def _write_param(self, index: int, value: int) -> None:
        model = self.generator.model
        if isinstance(model, UniformTraffic):
            if index == 0:
                if value < 1:
                    raise EmulationError("packet length must be >= 1")
                model._length_range = (value, value)
            elif index == 1:
                if value < 1:
                    raise EmulationError("interval must be >= 1")
                model._interval_range = (value, value)
        elif isinstance(model, BurstTraffic):
            if index == 0:
                model.length = max(1, value)
            elif index == 1:
                model.p_on = max(from_q16(value), 1.0 / Q16)
            elif index == 2:
                model.p_off = max(from_q16(value), 1.0 / Q16)
        elif isinstance(model, PoissonTraffic):
            if index == 0:
                model.length = max(1, value)
            elif index == 1:
                model.rate = min(1.0, max(from_q16(value), 1.0 / Q16))
        elif isinstance(model, OnOffTraffic):
            if index == 0:
                model.length = max(1, value)
            elif index == 1:
                model.packets_per_burst = max(1, value)
            elif index == 2:
                model.gap = value
        elif isinstance(model, TraceTraffic):
            raise EmulationError(
                "trace-driven TG parameters are read-only; load a"
                " different trace instead"
            )

    def describe(self) -> str:
        model = type(self.generator.model).__name__
        return (
            f"tg {self.name} node {self.generator.node} model {model}"
            f" sent {self.generator.packets_sent}"
        )


TR_CTRL_ENABLE = 1 << 0
TR_CTRL_RESET = 1 << 1

#: KIND register encoding.
TR_KIND_CODES = {"stochastic": 1, "tracedriven": 2}

#: HIST_SELECT register encoding for the stochastic receptor.
HIST_LENGTH, HIST_GAP, HIST_SOURCE = 0, 1, 2


class TRDevice(Device):
    """Register bench of one traffic receptor.

    Common registers: CTRL (enable/reset), KIND (ro), PACKETS, FLITS,
    RUNTIME (all ro).  Trace-driven receptors add the latency-analyzer
    and congestion-counter registers; stochastic receptors expose their
    histograms through a select/index/data window, which is how the
    monitor drains counter banks over the bus.
    """

    kind = "tr"

    def __init__(self, name: str, receptor: TrafficReceptor) -> None:
        super().__init__(name)
        self.receptor = receptor
        bank = self.bank
        bank.define(
            "CTRL", value=TR_CTRL_ENABLE, on_write=self._write_ctrl
        )
        if isinstance(receptor, StochasticReceptor):
            kind_code = TR_KIND_CODES["stochastic"]
        elif isinstance(receptor, TraceDrivenReceptor):
            kind_code = TR_KIND_CODES["tracedriven"]
        else:
            kind_code = 0
        bank.define("KIND", value=kind_code, writable=False)
        bank.define(
            "PACKETS",
            writable=False,
            on_read=lambda: self.receptor.packets_received,
        )
        bank.define(
            "FLITS",
            writable=False,
            on_read=lambda: self.receptor.flits_received,
        )
        bank.define(
            "RUNTIME",
            writable=False,
            on_read=lambda: self.receptor.running_time,
        )
        if isinstance(receptor, TraceDrivenReceptor):
            self._define_tracedriven(receptor)
        if isinstance(receptor, StochasticReceptor):
            self._define_stochastic(receptor)

    def _write_ctrl(self, value: int) -> None:
        self.receptor.enabled = bool(value & TR_CTRL_ENABLE)
        if value & TR_CTRL_RESET:
            self.receptor.reset()
            self.bank["CTRL"].poke(value & ~TR_CTRL_RESET)

    # ------------------------------------------------------------------
    # Trace-driven registers (latency analyzer + congestion counter)
    # ------------------------------------------------------------------
    def _define_tracedriven(self, receptor: TraceDrivenReceptor) -> None:
        lat = receptor.latency
        con = receptor.congestion
        bank = self.bank
        bank.define(
            "LAT_MIN",
            writable=False,
            on_read=lambda: lat.min_latency or 0,
        )
        bank.define(
            "LAT_MAX",
            writable=False,
            on_read=lambda: lat.max_latency or 0,
        )
        bank.define(
            "LAT_SUM_LO",
            writable=False,
            on_read=lambda: lat.total_latency & 0xFFFFFFFF,
        )
        bank.define(
            "LAT_SUM_HI",
            writable=False,
            on_read=lambda: lat.total_latency >> 32,
        )
        bank.define(
            "LAT_COUNT", writable=False, on_read=lambda: lat.count
        )
        bank.define(
            "STALL_LO",
            writable=False,
            on_read=lambda: con.total_stall_cycles & 0xFFFFFFFF,
        )
        bank.define(
            "STALL_HI",
            writable=False,
            on_read=lambda: con.total_stall_cycles >> 32,
        )
        bank.define(
            "CONGESTED",
            writable=False,
            on_read=lambda: con.congested_packets,
        )

    # ------------------------------------------------------------------
    # Stochastic registers (histogram window)
    # ------------------------------------------------------------------
    def _define_stochastic(self, receptor: StochasticReceptor) -> None:
        bank = self.bank
        bank.define("HIST_SELECT", value=HIST_LENGTH)
        bank.define("HIST_INDEX", value=0)
        bank.define(
            "HIST_DATA", writable=False, on_read=self._read_hist_data
        )
        bank.define(
            "HIST_OVERFLOW",
            writable=False,
            on_read=lambda: self._selected_histogram().overflow,
        )
        bank.define(
            "HIST_TOTAL",
            writable=False,
            on_read=lambda: self._selected_histogram().total,
        )

    def _selected_histogram(self):
        receptor = self.receptor
        assert isinstance(receptor, StochasticReceptor)
        select = self.bank["HIST_SELECT"].read()
        if select == HIST_LENGTH:
            return receptor.length_histogram
        if select == HIST_GAP:
            return receptor.gap_histogram
        if select == HIST_SOURCE:
            return receptor.source_histogram
        raise EmulationError(
            f"HIST_SELECT={select} selects no histogram (0..2 valid)"
        )

    def _read_hist_data(self) -> int:
        histogram = self._selected_histogram()
        index = self.bank["HIST_INDEX"].read()
        if not 0 <= index < histogram.n_bins:
            raise EmulationError(
                f"HIST_INDEX={index} beyond histogram"
                f" ({histogram.n_bins} bins)"
            )
        return histogram.counts[index]

    def describe(self) -> str:
        return (
            f"tr {self.name} node {self.receptor.node}"
            f" packets {self.receptor.packets_received}"
        )
