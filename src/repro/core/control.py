"""The control module.

Table 1 of the paper lists a tiny "Control module" (18 slices): the
device through which the processor starts and stops the emulation and
polls global progress.  Its register map:

========== ==== =====================================================
register   mode purpose
========== ==== =====================================================
CTRL       rw   bit 0: run enable; bit 1: statistics reset (W1C)
STATUS     ro   bit 0: running; bit 1: done (all TGs exhausted, drained)
CYCLES_LO  ro   emulated cycle counter, low word
CYCLES_HI  ro   emulated cycle counter, high word
SENT       ro   packets sent by all generators
RECEIVED   ro   packets received by all receptors
========== ==== =====================================================
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.bus import Device

CTRL_RUN = 1 << 0
CTRL_STAT_RESET = 1 << 1
STATUS_RUNNING = 1 << 0
STATUS_DONE = 1 << 1


class ControlDevice(Device):
    """Global run control and progress counters."""

    kind = "control"

    def __init__(self, name: str = "control") -> None:
        super().__init__(name)
        self.running = False
        # Platform-provided probes, wired by the platform builder.
        self.get_cycles: Callable[[], int] = lambda: 0
        self.get_sent: Callable[[], int] = lambda: 0
        self.get_received: Callable[[], int] = lambda: 0
        self.is_done: Callable[[], bool] = lambda: False
        self.on_stat_reset: Optional[Callable[[], None]] = None
        self.bank.define("CTRL", on_write=self._write_ctrl)
        self.bank.define(
            "STATUS", writable=False, on_read=self._read_status
        )
        self.bank.define(
            "CYCLES_LO",
            writable=False,
            on_read=lambda: self.get_cycles() & 0xFFFFFFFF,
        )
        self.bank.define(
            "CYCLES_HI",
            writable=False,
            on_read=lambda: self.get_cycles() >> 32,
        )
        self.bank.define(
            "SENT", writable=False, on_read=lambda: self.get_sent()
        )
        self.bank.define(
            "RECEIVED",
            writable=False,
            on_read=lambda: self.get_received(),
        )

    def _write_ctrl(self, value: int) -> None:
        self.running = bool(value & CTRL_RUN)
        if value & CTRL_STAT_RESET and self.on_stat_reset is not None:
            self.on_stat_reset()
            # W1C: clear the reset bit so reads show it self-cleared.
            self.bank["CTRL"].poke(value & ~CTRL_STAT_RESET)

    def _read_status(self) -> int:
        status = 0
        if self.running:
            status |= STATUS_RUNNING
        if self.is_done():
            status |= STATUS_DONE
        return status

    # ------------------------------------------------------------------
    # Direct (device-side) control, used by the engine
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.running = True
        self.bank["CTRL"].poke(CTRL_RUN)

    def stop(self) -> None:
        self.running = False
        self.bank["CTRL"].poke(0)

    def describe(self) -> str:
        state = "running" if self.running else "stopped"
        return f"control {self.name} [{state}]"
