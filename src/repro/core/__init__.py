"""The emulation framework (the paper's contribution).

``repro.core`` assembles the substrates into the HW/SW emulation
platform of Genko et al.: a network of switches plus traffic generators
and receptors (HW side), configured and orchestrated by a processor
over a memory-mapped bus fabric (SW side), with a monitor rendering
the final report and a six-step emulation flow that only repeats the
expensive hardware steps when hardware parameters actually change.
"""

from repro.core.bus import AddressError, BusFabric, Device
from repro.core.config import (
    PlatformConfig,
    TGSpec,
    TRSpec,
    generic_platform_config,
    paper_platform_config,
    resolve_topology_spec,
)
from repro.core.control import ControlDevice
from repro.core.devices import TGDevice, TRDevice
from repro.core.engine import EmulationEngine, EngineResult
from repro.core.errors import ConfigError, EmulationError
from repro.core.flow import EmulationFlow, FlowReport
from repro.core.monitor import Monitor
from repro.core.platform import EmulationPlatform, build_platform
from repro.core.processor import Processor
from repro.core.registers import Register, RegisterBank

__all__ = [
    "AddressError",
    "BusFabric",
    "ConfigError",
    "ControlDevice",
    "Device",
    "EmulationEngine",
    "EmulationError",
    "EmulationFlow",
    "EmulationPlatform",
    "EngineResult",
    "FlowReport",
    "Monitor",
    "PlatformConfig",
    "Processor",
    "Register",
    "RegisterBank",
    "TGDevice",
    "TGSpec",
    "TRDevice",
    "TRSpec",
    "build_platform",
    "generic_platform_config",
    "paper_platform_config",
    "resolve_topology_spec",
]
