"""The memory-mapped bus fabric.

Slide 8: "The processor can access each component by accessing their
specific addresses.  In our design, we allow up to 4 internal busses
and 1024 devices in each internal bus."  The fabric therefore decodes a
24-bit physical address as::

    [23:22] bus index (4 buses)
    [21:12] device index within the bus (1024 devices)
    [11:0]  byte offset into the device's register bank (1024 words)

Every device owns one 4 KiB register window.  The fabric also counts
accesses per bus, which the FPGA cost model and the monitor use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import EmulationError
from repro.core.registers import RegisterBank

N_BUSES = 4
DEVICES_PER_BUS = 1024
DEVICE_WINDOW_BYTES = 4096

_BUS_SHIFT = 22
_DEVICE_SHIFT = 12
_OFFSET_MASK = DEVICE_WINDOW_BYTES - 1
ADDRESS_BITS = 24


class AddressError(EmulationError):
    """Access to an unmapped or malformed address."""


class Device:
    """Base class of every memory-mapped platform component.

    A device is a register bank plus an identity; subclasses populate
    the bank and react to writes through register callbacks.
    """

    #: Subclasses set a short type tag used in reports ("tg", "tr", ...).
    kind: str = "device"

    def __init__(self, name: str) -> None:
        self.name = name
        self.bank = RegisterBank(name)
        self.base_address: Optional[int] = None

    def describe(self) -> str:
        """One-line description for the monitor's device listing."""
        return f"{self.kind} {self.name}"

    def register_address(self, register_name: str) -> int:
        """Absolute bus address of one of this device's registers."""
        if self.base_address is None:
            raise AddressError(
                f"device {self.name!r} is not attached to a bus"
            )
        return self.base_address + self.bank.offset_of(register_name)


def make_address(bus: int, device: int, offset: int = 0) -> int:
    """Compose a physical address from its fields."""
    if not 0 <= bus < N_BUSES:
        raise AddressError(f"bus index {bus} out of range [0, {N_BUSES})")
    if not 0 <= device < DEVICES_PER_BUS:
        raise AddressError(
            f"device index {device} out of range [0, {DEVICES_PER_BUS})"
        )
    if not 0 <= offset < DEVICE_WINDOW_BYTES:
        raise AddressError(
            f"offset 0x{offset:x} out of range"
            f" [0, 0x{DEVICE_WINDOW_BYTES:x})"
        )
    return (bus << _BUS_SHIFT) | (device << _DEVICE_SHIFT) | offset


def split_address(address: int) -> Tuple[int, int, int]:
    """Decompose a physical address into (bus, device, offset)."""
    if not 0 <= address < (1 << ADDRESS_BITS):
        raise AddressError(
            f"address 0x{address:x} outside the {ADDRESS_BITS}-bit"
            f" physical space"
        )
    bus = address >> _BUS_SHIFT
    device = (address >> _DEVICE_SHIFT) & (DEVICES_PER_BUS - 1)
    offset = address & _OFFSET_MASK
    return bus, device, offset


class BusFabric:
    """Up to 4 internal buses with up to 1024 devices each."""

    def __init__(self) -> None:
        self._devices: List[Dict[int, Device]] = [
            {} for _ in range(N_BUSES)
        ]
        self.reads = [0] * N_BUSES
        self.writes = [0] * N_BUSES

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(
        self, device: Device, bus: int = 0, slot: Optional[int] = None
    ) -> int:
        """Attach a device; return its base address.

        With ``slot=None`` the lowest free device index on ``bus`` is
        allocated (the platform-compilation step assigns addresses this
        way, in instantiation order).
        """
        if not 0 <= bus < N_BUSES:
            raise AddressError(
                f"bus index {bus} out of range [0, {N_BUSES})"
            )
        slots = self._devices[bus]
        if slot is None:
            slot = 0
            while slot in slots:
                slot += 1
        if slot >= DEVICES_PER_BUS:
            raise AddressError(
                f"bus {bus} is full ({DEVICES_PER_BUS} devices)"
            )
        if slot in slots:
            raise AddressError(
                f"device slot {slot} on bus {bus} is already occupied"
                f" by {slots[slot].name!r}"
            )
        if device.base_address is not None:
            raise AddressError(
                f"device {device.name!r} is already attached"
            )
        slots[slot] = device
        device.base_address = make_address(bus, slot, 0)
        return device.base_address

    def device_at(self, bus: int, slot: int) -> Device:
        try:
            return self._devices[bus][slot]
        except (IndexError, KeyError):
            raise AddressError(
                f"no device at bus {bus}, slot {slot}"
            ) from None

    def devices(self) -> List[Device]:
        """All attached devices, in (bus, slot) order."""
        result: List[Device] = []
        for bus_devices in self._devices:
            for slot in sorted(bus_devices):
                result.append(bus_devices[slot])
        return result

    # ------------------------------------------------------------------
    # Processor-facing access
    # ------------------------------------------------------------------
    def read(self, address: int) -> int:
        bus, slot, offset = split_address(address)
        device = self.device_at(bus, slot)
        self.reads[bus] += 1
        return device.bank.read(offset)

    def write(self, address: int, value: int) -> None:
        bus, slot, offset = split_address(address)
        device = self.device_at(bus, slot)
        self.writes[bus] += 1
        device.bank.write(offset, value)

    @property
    def total_accesses(self) -> int:
        return sum(self.reads) + sum(self.writes)
