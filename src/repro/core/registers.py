"""Memory-mapped register banks.

Every platform device — traffic generator, traffic receptor, control
module — exposes "a bench of registers" (Slide 10) that the processor
reads and writes to parameterise and observe it.  A
:class:`RegisterBank` is an ordered collection of 32-bit
:class:`Register` objects; the bus fabric maps each register to
``device_base + 4 * index``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import EmulationError

WORD_MASK = 0xFFFFFFFF
WORD_BYTES = 4


class RegisterAccessError(EmulationError):
    """Illegal register access (unknown name/offset, read/write violation)."""


class Register:
    """One 32-bit register.

    Parameters
    ----------
    name:
        Register mnemonic (unique within its bank).
    value:
        Reset value.
    writable:
        Whether the processor may write it (counters are read-only).
    on_write:
        Callback ``(new_value) -> None`` fired after a processor write;
        this is how register writes reach the underlying device model.
    on_read:
        Callback ``() -> int`` that produces the live value on processor
        reads (used for counters that the device updates continuously).
    """

    def __init__(
        self,
        name: str,
        value: int = 0,
        writable: bool = True,
        on_write: Optional[Callable[[int], None]] = None,
        on_read: Optional[Callable[[], int]] = None,
    ) -> None:
        self.name = name
        self._value = value & WORD_MASK
        self.writable = writable
        self.on_write = on_write
        self.on_read = on_read

    def read(self) -> int:
        if self.on_read is not None:
            self._value = self.on_read() & WORD_MASK
        return self._value

    def write(self, value: int) -> None:
        if not self.writable:
            raise RegisterAccessError(
                f"register {self.name!r} is read-only"
            )
        self._value = value & WORD_MASK
        if self.on_write is not None:
            self.on_write(self._value)

    def poke(self, value: int) -> None:
        """Device-side update (bypasses the read-only check)."""
        self._value = value & WORD_MASK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "rw" if self.writable else "ro"
        return f"Register({self.name!r}, 0x{self._value:08x}, {mode})"


class RegisterBank:
    """An ordered, addressable collection of registers.

    Register ``i`` lives at byte offset ``4 * i``; the bank rejects
    unaligned and out-of-range accesses the way the bus slave logic of
    the hardware device would.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._registers: List[Register] = []
        self._by_name: Dict[str, Register] = {}

    def add(self, register: Register) -> Register:
        if register.name in self._by_name:
            raise RegisterAccessError(
                f"duplicate register name {register.name!r} in bank"
                f" {self.name!r}"
            )
        self._registers.append(register)
        self._by_name[register.name] = register
        return register

    def define(self, name: str, **kwargs) -> Register:
        """Create and add a register in one call."""
        return self.add(Register(name, **kwargs))

    # ------------------------------------------------------------------
    # Name-based access (device-internal and test convenience)
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Register:
        try:
            return self._by_name[name]
        except KeyError:
            raise RegisterAccessError(
                f"no register {name!r} in bank {self.name!r}"
            ) from None

    def names(self) -> List[str]:
        return [r.name for r in self._registers]

    def __len__(self) -> int:
        return len(self._registers)

    # ------------------------------------------------------------------
    # Offset-based access (what the bus fabric uses)
    # ------------------------------------------------------------------
    def offset_of(self, name: str) -> int:
        """Byte offset of a register within the bank."""
        for index, register in enumerate(self._registers):
            if register.name == name:
                return index * WORD_BYTES
        raise RegisterAccessError(
            f"no register {name!r} in bank {self.name!r}"
        )

    def _register_at(self, offset: int) -> Register:
        if offset % WORD_BYTES:
            raise RegisterAccessError(
                f"unaligned register access at offset 0x{offset:x} in"
                f" bank {self.name!r}"
            )
        index = offset // WORD_BYTES
        if not 0 <= index < len(self._registers):
            raise RegisterAccessError(
                f"offset 0x{offset:x} beyond bank {self.name!r}"
                f" ({len(self._registers)} registers)"
            )
        return self._registers[index]

    def read(self, offset: int) -> int:
        return self._register_at(offset).read()

    def write(self, offset: int, value: int) -> None:
        self._register_at(offset).write(value)

    def dump(self) -> Dict[str, int]:
        """Name -> current value snapshot (monitor convenience)."""
        return {r.name: r.read() for r in self._registers}
