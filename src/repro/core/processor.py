"""The embedded processor (software side of the HW/SW platform).

Slide 8: "A Processor (i.e. PowerPC): Orchestrates the whole process
... The processor can access each component by accessing their specific
addresses."  This class is that orchestration firmware: every
interaction with the platform goes through :class:`~repro.core.bus.
BusFabric` reads and writes — it never touches the device objects
directly — so the software/hardware boundary of the real platform is
preserved and testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.control import CTRL_RUN, CTRL_STAT_RESET, STATUS_DONE, STATUS_RUNNING
from repro.core.devices import TG_CTRL_ENABLE, TG_CTRL_RESET
from repro.core.errors import EmulationError
from repro.core.platform import EmulationPlatform


class Processor:
    """Memory-mapped orchestration of an emulation platform."""

    def __init__(self, platform: EmulationPlatform) -> None:
        self.platform = platform
        self.fabric = platform.fabric
        # The address map produced by platform compilation: the
        # firmware is linked against these constants.
        self._control_base = platform.control.base_address
        self._tg_addresses: Dict[int, int] = {
            d.generator.node: d.base_address for d in platform.tg_devices
        }
        self._tr_addresses: Dict[int, int] = {
            d.receptor.node: d.base_address for d in platform.tr_devices
        }

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def read(self, address: int) -> int:
        return self.fabric.read(address)

    def write(self, address: int, value: int) -> None:
        self.fabric.write(address, value)

    def _tg_reg(self, node: int, name: str) -> int:
        try:
            device = next(
                d
                for d in self.platform.tg_devices
                if d.generator.node == node
            )
        except StopIteration:
            raise EmulationError(f"no TG on node {node}") from None
        return device.register_address(name)

    def _tr_reg(self, node: int, name: str) -> int:
        try:
            device = next(
                d
                for d in self.platform.tr_devices
                if d.receptor.node == node
            )
        except StopIteration:
            raise EmulationError(f"no TR on node {node}") from None
        return device.register_address(name)

    def _control_reg(self, name: str) -> int:
        return self.platform.control.register_address(name)

    # ------------------------------------------------------------------
    # Platform initialisation (flow step 3)
    # ------------------------------------------------------------------
    def initialise_generator(
        self,
        node: int,
        seed: Optional[int] = None,
        max_packets: Optional[int] = None,
        params: Optional[Dict[int, int]] = None,
    ) -> None:
        """Write a TG's software settings and reset it.

        ``params`` maps PARAM register index -> raw register value (see
        :class:`~repro.core.devices.TGDevice` for the encoding).
        """
        if seed is not None:
            self.write(self._tg_reg(node, "SEED"), seed)
        if max_packets is not None:
            self.write(self._tg_reg(node, "MAX_PKTS"), max_packets)
        if params:
            for index, value in params.items():
                self.write(self._tg_reg(node, f"PARAM{index}"), value)
        # Apply: reset with enable kept on.
        self.write(
            self._tg_reg(node, "CTRL"), TG_CTRL_ENABLE | TG_CTRL_RESET
        )

    def reset_statistics(self) -> None:
        """Clear all statistics devices through the control module."""
        ctrl = self._control_reg("CTRL")
        current = self.read(ctrl)
        self.write(ctrl, current | CTRL_STAT_RESET)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.write(self._control_reg("CTRL"), CTRL_RUN)

    def stop(self) -> None:
        self.write(self._control_reg("CTRL"), 0)

    @property
    def running(self) -> bool:
        return bool(self.read(self._control_reg("STATUS")) & STATUS_RUNNING)

    @property
    def done(self) -> bool:
        return bool(self.read(self._control_reg("STATUS")) & STATUS_DONE)

    def cycles(self) -> int:
        lo = self.read(self._control_reg("CYCLES_LO"))
        hi = self.read(self._control_reg("CYCLES_HI"))
        return (hi << 32) | lo

    def progress(self) -> Dict[str, int]:
        """The poll loop of the orchestration firmware."""
        return {
            "cycles": self.cycles(),
            "sent": self.read(self._control_reg("SENT")),
            "received": self.read(self._control_reg("RECEIVED")),
        }

    # ------------------------------------------------------------------
    # Statistics readout (flow step 6 feeds on this)
    # ------------------------------------------------------------------
    def read_generator_counters(self, node: int) -> Dict[str, int]:
        return {
            name: self.read(self._tg_reg(node, name))
            for name in ("SENT", "FLITS", "BACKPRES")
        }

    def read_receptor_counters(self, node: int) -> Dict[str, int]:
        return {
            name: self.read(self._tr_reg(node, name))
            for name in ("PACKETS", "FLITS", "RUNTIME")
        }

    def read_latency_summary(self, node: int) -> Dict[str, float]:
        """Latency analyzer readout of a trace-driven receptor."""
        count = self.read(self._tr_reg(node, "LAT_COUNT"))
        total = (
            self.read(self._tr_reg(node, "LAT_SUM_HI")) << 32
        ) | self.read(self._tr_reg(node, "LAT_SUM_LO"))
        return {
            "count": count,
            "min": self.read(self._tr_reg(node, "LAT_MIN")),
            "max": self.read(self._tr_reg(node, "LAT_MAX")),
            "mean": (total / count) if count else 0.0,
        }

    def read_congestion_summary(self, node: int) -> Dict[str, int]:
        """Congestion counter readout of a trace-driven receptor."""
        stall = (
            self.read(self._tr_reg(node, "STALL_HI")) << 32
        ) | self.read(self._tr_reg(node, "STALL_LO"))
        return {
            "stall_cycles": stall,
            "congested_packets": self.read(
                self._tr_reg(node, "CONGESTED")
            ),
        }

    def drain_histogram(self, node: int, which: int) -> List[int]:
        """Read a stochastic receptor's histogram over the bus window."""
        self.write(self._tr_reg(node, "HIST_SELECT"), which)
        counts: List[int] = []
        index = 0
        total_reg = self._tr_reg(node, "HIST_TOTAL")
        del total_reg  # total available if needed; we size by probing
        data_reg = self._tr_reg(node, "HIST_DATA")
        index_reg = self._tr_reg(node, "HIST_INDEX")
        while True:
            self.write(index_reg, index)
            try:
                counts.append(self.read(data_reg))
            except EmulationError:
                break  # ran off the end of the counter bank
            index += 1
        return counts
