"""The monitor.

Slide 8: "A monitor: Display on the screen of a PC the information
extracted from NoC emulation components."  The monitor renders the
final report of an emulation run — device inventory, per-generator and
per-receptor statistics, link loads, congestion, and the run's
emulated-vs-wall-clock timing — as plain text, which is what the
host-PC display of the real platform shows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import EngineResult
from repro.core.platform import EmulationPlatform
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor
from repro.stats.runtime import format_duration


class Monitor:
    """Host-side rendering of platform state and run results."""

    def __init__(self, platform: EmulationPlatform) -> None:
        self.platform = platform

    # ------------------------------------------------------------------
    # Sections
    # ------------------------------------------------------------------
    def device_listing(self) -> str:
        lines = ["devices:"]
        for device in self.platform.fabric.devices():
            base = device.base_address
            lines.append(
                f"  0x{base:06x}  {device.describe()}"
            )
        return "\n".join(lines)

    def generator_section(self) -> str:
        lines = ["traffic generators:"]
        for generator in self.platform.generators:
            model = type(generator.model).__name__
            lines.append(
                f"  node {generator.node} ({model}):"
                f" sent {generator.packets_sent} packets /"
                f" {generator.flits_sent} flits,"
                f" backpressure {generator.backpressure_cycles} cycles"
            )
        return "\n".join(lines)

    def receptor_section(self) -> str:
        lines = ["traffic receptors:"]
        for receptor in self.platform.receptors:
            if isinstance(
                receptor, (StochasticReceptor, TraceDrivenReceptor)
            ):
                report = receptor.report()
            else:
                report = repr(receptor)
            lines.extend("  " + line for line in report.splitlines())
        return "\n".join(lines)

    def network_section(self) -> str:
        platform = self.platform
        lines = [
            "network:",
            f"  cycles          : {platform.cycle}",
            f"  congestion rate : {platform.congestion_rate():.4f}",
            "  link loads:",
        ]
        loads = sorted(
            platform.hot_link_loads().items(),
            key=lambda item: item[1],
            reverse=True,
        )
        for name, load in loads:
            lines.append(f"    {name:<8} {load:6.1%}")
        return "\n".join(lines)

    def occupancy_section(self) -> str:
        """Buffer-occupancy report (needs ``sample_buffers=True``)."""
        from repro.stats.occupancy import OccupancyReport

        return OccupancyReport(self.platform.network).render()

    def power_section(self) -> str:
        """Activity-based power estimate for the run so far."""
        from repro.fpga.power import estimate_power

        return estimate_power(self.platform).render()

    def faults_section(self, result: EngineResult) -> str:
        """Render ``EngineResult.faults`` (degradation record).

        Per applied event: what it dropped, whether routing was
        repaired and how long the fabric took to deliver again; then
        the throughput of the before/during/after windows the events
        cut the run into.
        """
        report = result.faults
        lines = [
            "faults:",
            f"  dropped         : {report.dropped_flits} flits /"
            f" {report.dropped_packets} packets",
        ]
        if report.degraded:
            lines.append(
                f"  DEGRADED        : {report.degraded_reason}"
            )
        for event in report.events:
            recovery = (
                f"recovered after {event.recovery_cycles} cycles"
                if event.recovery_cycles is not None
                else "no delivery after the event"
            )
            lines.append(
                f"  @{event.cycle:<6} {event.kind} {event.detail}:"
                f" dropped {event.dropped_flits} flits"
                f" ({event.dropped_packets} packets),"
                f" {'rerouted, ' if event.repaired else ''}{recovery}"
            )
        for name, drops in sorted(report.per_link_drops.items()):
            lines.append(f"    {name:<24} lost {drops} flits")
        if report.windows:
            lines.append("  throughput windows:")
            for window in report.windows:
                lines.append(
                    f"    {window.label:<24}"
                    f" [{window.start}, {window.end})"
                    f" {window.packets_received} packets"
                    f" ({window.throughput:.4f}/cycle)"
                )
        return "\n".join(lines)

    def windows_section(self, result: EngineResult) -> str:
        """Render the windowed-telemetry series of the run."""
        from repro.telemetry.windows import format_window_table

        table = format_window_table(list(result.windows))
        lines = ["telemetry windows:"]
        lines.extend("  " + line for line in table.splitlines())
        return "\n".join(lines)

    def timing_section(self, result: EngineResult) -> str:
        return "\n".join(
            [
                "timing:",
                f"  emulated cycles : {result.cycles}",
                f"  @ {result.f_clk_hz / 1e6:.0f} MHz platform clock:"
                f" {format_duration(result.emulated_seconds)}",
                f"  engine speed    :"
                f" {result.engine_cycles_per_sec:,.0f} cycles/sec"
                f" (wall {result.wall_seconds:.2f} s)",
                f"  completed       : {result.completed}",
            ]
        )

    # ------------------------------------------------------------------
    # The final report (flow step 6)
    # ------------------------------------------------------------------
    def final_report(self, result: Optional[EngineResult] = None) -> str:
        platform = self.platform
        sections: List[str] = [
            f"=== emulation report: {platform.config.name} ===",
            f"packets sent {platform.packets_sent},"
            f" received {platform.packets_received}",
            self.device_listing(),
            self.generator_section(),
            self.receptor_section(),
            self.network_section(),
        ]
        if platform.network.sample_buffers:
            sections.append(self.occupancy_section())
        if result is not None:
            if result.faults is not None:
                sections.append(self.faults_section(result))
            if getattr(result, "windows", None):
                sections.append(self.windows_section(result))
            sections.append(self.timing_section(result))
        return "\n\n".join(sections)
