"""Exception hierarchy of the emulation framework."""

from __future__ import annotations


class EmulationError(RuntimeError):
    """Base class for all emulation-framework failures."""


class ConfigError(EmulationError):
    """An invalid or inconsistent platform configuration."""
