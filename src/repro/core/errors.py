"""Exception hierarchy of the emulation framework."""

from __future__ import annotations


class EmulationError(RuntimeError):
    """Base class for all emulation-framework failures."""


class ConfigError(EmulationError):
    """An invalid or inconsistent platform configuration."""


class ScenarioTimeout(EmulationError):
    """A run exceeded its cooperative wall-clock budget.

    Raised by :meth:`~repro.core.engine.EmulationEngine.run` when
    ``max_wall_seconds`` expires — the in-process half of the sweep
    supervisor's timeout enforcement (the supervisor's watchdog kill
    is the out-of-process backstop for wedged workers).  Carries the
    cycle the check tripped at and the elapsed wall seconds so the
    failure record can say how far the scenario got.
    """

    def __init__(
        self, message: str, cycle: int = 0, elapsed: float = 0.0
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.elapsed = elapsed


class UnroutableError(EmulationError):
    """A fault left at least one active flow with no surviving route.

    Raised by online repair when avoiding the dead links partitions
    the fabric away from a flow that is still generating traffic.
    ``flows`` lists the orphaned ``(src_node, dst_node)`` pairs.
    """

    def __init__(self, message: str, flows=()) -> None:
        super().__init__(message)
        self.flows = tuple(flows)
