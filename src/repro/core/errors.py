"""Exception hierarchy of the emulation framework."""

from __future__ import annotations


class EmulationError(RuntimeError):
    """Base class for all emulation-framework failures."""


class ConfigError(EmulationError):
    """An invalid or inconsistent platform configuration."""


class UnroutableError(EmulationError):
    """A fault left at least one active flow with no surviving route.

    Raised by online repair when avoiding the dead links partitions
    the fabric away from a flow that is still generating traffic.
    ``flows`` lists the orphaned ``(src_node, dst_node)`` pairs.
    """

    def __init__(self, message: str, flows=()) -> None:
        super().__init__(message)
        self.flows = tuple(flows)
