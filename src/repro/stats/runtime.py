"""Run-time and speed modelling (Slides 18 and 20).

Slide 18 compares three ways of evaluating the same NoC for the same
workload, by *simulator speed in emulated cycles per wall-clock second*:

==================  ==============  =========================
mode                speed           source
==================  ==============  =========================
FPGA emulation      50,000,000/s    the platform's 50 MHz clock
SystemC (MPARM)     20,000/s        cycle-accurate simulation
Verilog (ModelSim)  3,200/s         RTL event-driven simulation
==================  ==============  =========================

:class:`RunTimeModel` converts a cycle count into wall-clock seconds at
a given speed, and :class:`SpeedReport` renders the paper's table rows
(time for 16 M and 1000 M packets) for any set of modes — including the
*measured* speeds of this package's own Python engines, which reproduce
the ordering emulation ≫ cycle-accurate ≫ RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: The paper's reported speeds in emulated cycles per second.
PAPER_SPEEDS = {
    "Our Emulation": 50_000_000.0,
    "SystemC (MPARM)": 20_000.0,
    "Verilog (ModelSim)": 3_200.0,
}

#: The two workload sizes of the Slide 18 table.
PAPER_WORKLOADS_MPACKETS = (16, 1000)


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's table does.

    Examples: ``3.2 sec``, ``3'20''``, ``2h13'``, ``13h53'``,
    ``5 days 19h``.
    """
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds < 60:
        return f"{seconds:.1f} sec"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}'{secs:02d}''"
    hours, minutes = divmod(minutes, 60)
    if hours < 24:
        return f"{hours}h{minutes:02d}'"
    days, hours = divmod(hours, 24)
    return f"{days} days {hours}h"


@dataclass
class RunTimeModel:
    """Converts emulated cycles to wall-clock time at a given speed.

    ``cycles_per_packet`` calibrates how many network cycles one packet
    costs for a concrete platform and traffic setup; the platform
    measures it from a short run (total cycles / packets completed).
    """

    speed_cycles_per_sec: float
    cycles_per_packet: float = 1.0

    def __post_init__(self) -> None:
        if self.speed_cycles_per_sec <= 0:
            raise ValueError("speed must be positive")
        if self.cycles_per_packet <= 0:
            raise ValueError("cycles per packet must be positive")

    def seconds_for_cycles(self, cycles: float) -> float:
        return cycles / self.speed_cycles_per_sec

    def seconds_for_packets(self, packets: float) -> float:
        return self.seconds_for_cycles(packets * self.cycles_per_packet)

    def format_for_packets(self, packets: float) -> str:
        return format_duration(self.seconds_for_packets(packets))


class SpeedReport:
    """The Slide 18 speed-comparison table.

    Rows are simulation modes with a speed in cycles/s; columns are
    workload sizes in packets.  ``cycles_per_packet`` is shared by all
    modes because every mode runs the *same* emulated workload.
    """

    def __init__(self, cycles_per_packet: float) -> None:
        if cycles_per_packet <= 0:
            raise ValueError("cycles per packet must be positive")
        self.cycles_per_packet = cycles_per_packet
        self._modes: List[Tuple[str, float, bool]] = []

    def add_mode(
        self, name: str, speed_cycles_per_sec: float, measured: bool = False
    ) -> None:
        """Add a row; ``measured`` marks speeds we timed ourselves."""
        if speed_cycles_per_sec <= 0:
            raise ValueError(f"speed for {name!r} must be positive")
        self._modes.append((name, speed_cycles_per_sec, measured))

    def add_paper_modes(self) -> None:
        """Add the three rows of the paper's table, fastest first."""
        for name, speed in PAPER_SPEEDS.items():
            self.add_mode(name, speed)

    @property
    def modes(self) -> List[Tuple[str, float, bool]]:
        return list(self._modes)

    def speedup(self, fast: str, slow: str) -> float:
        """Speed ratio between two modes (the 4-orders-of-magnitude claim)."""
        speeds = {name: speed for name, speed, _ in self._modes}
        try:
            return speeds[fast] / speeds[slow]
        except KeyError as missing:
            raise KeyError(f"unknown mode {missing}") from None

    def rows(
        self, workloads_mpackets: Sequence[int] = PAPER_WORKLOADS_MPACKETS
    ) -> List[Dict[str, str]]:
        """One dict per mode with formatted times per workload."""
        table: List[Dict[str, str]] = []
        for name, speed, measured in self._modes:
            model = RunTimeModel(speed, self.cycles_per_packet)
            row = {
                "mode": name + (" [measured]" if measured else ""),
                "speed": f"{speed:,.0f}",
            }
            for mp in workloads_mpackets:
                row[f"{mp}Mpackets"] = model.format_for_packets(mp * 1e6)
            table.append(row)
        return table

    def render(
        self, workloads_mpackets: Sequence[int] = PAPER_WORKLOADS_MPACKETS
    ) -> str:
        """Plain-text table in the layout of the paper's Slide 18."""
        rows = self.rows(workloads_mpackets)
        headers = ["Simulation mode", "Speed (cycles/sec)"] + [
            f"Time for {mp} Mpackets" for mp in workloads_mpackets
        ]
        cells = [
            [row["mode"], row["speed"]]
            + [row[f"{mp}Mpackets"] for mp in workloads_mpackets]
            for row in rows
        ]
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in cells))
            if cells
            else len(headers[c])
            for c in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)
