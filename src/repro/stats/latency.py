"""The latency analyzer (trace-driven receptor, Slide 11).

Latency is measured from packet *generation* (the cycle the traffic
model emitted it) to packet *completion* (tail flit reassembled at the
receptor), so it includes source queueing.  That definition is what
makes the paper's Slide 22 curve saturate: with finite TG queues the
worst-case latency is bounded by queue depth over drain rate, and the
bound is set by the congestion rate of the loaded links (90%).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.noc.flit import Packet
from repro.receptors.histogram import Histogram


class LatencyAnalyzer:
    """Accumulates per-packet latency statistics.

    Keeps exact aggregate registers (count, sum, min, max) plus a
    histogram for distribution queries, and per-burst aggregates for
    the packets-per-burst sweeps of the paper's trace-driven figures.
    """

    def __init__(
        self, histogram_bins: int = 64, histogram_bin_width: int = 8
    ) -> None:
        self.count = 0
        self.total_latency = 0
        self.min_latency: Optional[int] = None
        self.max_latency: Optional[int] = None
        self.histogram = Histogram(
            histogram_bins, histogram_bin_width, origin=0
        )
        # Latency decomposition: generation -> wire (source queueing)
        # and wire -> reassembly (network time).  Only packets whose
        # NI stamped a wire_entry_cycle contribute.
        self.total_queueing = 0
        self.total_network = 0
        self.decomposed_count = 0
        # burst_id -> [packet count, latency sum]
        self._burst_acc: Dict[int, List[int]] = defaultdict(
            lambda: [0, 0]
        )

    def record(self, packet: Packet, completion_cycle: int) -> int:
        """Record one packet completion; return its latency in cycles."""
        latency = completion_cycle - packet.injection_cycle
        if latency < 0:
            raise ValueError(
                f"packet {packet.pid} completed at {completion_cycle}"
                f" before its injection at {packet.injection_cycle}"
            )
        self.count += 1
        self.total_latency += latency
        if self.min_latency is None or latency < self.min_latency:
            self.min_latency = latency
        if self.max_latency is None or latency > self.max_latency:
            self.max_latency = latency
        self.histogram.add(latency)
        if packet.wire_entry_cycle is not None:
            queueing = packet.wire_entry_cycle - packet.injection_cycle
            if 0 <= queueing <= latency:
                self.total_queueing += queueing
                self.total_network += latency - queueing
                self.decomposed_count += 1
        if packet.burst_id is not None:
            acc = self._burst_acc[packet.burst_id]
            acc[0] += 1
            acc[1] += latency
        return latency

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        """Average packet latency in cycles (0 when nothing recorded)."""
        return self.total_latency / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Approximate latency quantile from the histogram bins."""
        return self.histogram.quantile(q)

    @property
    def mean_queueing_latency(self) -> float:
        """Mean generation-to-wire component (source queueing)."""
        if self.decomposed_count == 0:
            return 0.0
        return self.total_queueing / self.decomposed_count

    @property
    def mean_network_latency(self) -> float:
        """Mean wire-to-reassembly component (time in the NoC)."""
        if self.decomposed_count == 0:
            return 0.0
        return self.total_network / self.decomposed_count

    @property
    def queueing_fraction(self) -> float:
        """Share of total latency spent queueing at the source.

        Under congestion this tends toward 1: the network saturates
        and additional latency accumulates in the TG queue, which is
        the mechanism behind Slide 22's latency ceiling.
        """
        total = self.total_queueing + self.total_network
        return self.total_queueing / total if total else 0.0

    # ------------------------------------------------------------------
    # Per-burst aggregates (packets/burst sweeps)
    # ------------------------------------------------------------------
    @property
    def bursts_seen(self) -> int:
        return len(self._burst_acc)

    def mean_latency_per_burst(self) -> Dict[int, float]:
        """burst_id -> mean latency of that burst's packets."""
        return {
            burst: acc[1] / acc[0]
            for burst, acc in self._burst_acc.items()
            if acc[0]
        }

    def mean_burst_size(self) -> float:
        """Average packets per observed burst."""
        if not self._burst_acc:
            return 0.0
        return sum(acc[0] for acc in self._burst_acc.values()) / len(
            self._burst_acc
        )

    def merge(self, other: "LatencyAnalyzer") -> None:
        """Fold another analyzer's records into this one."""
        self.count += other.count
        self.total_latency += other.total_latency
        if other.min_latency is not None:
            self.min_latency = (
                other.min_latency
                if self.min_latency is None
                else min(self.min_latency, other.min_latency)
            )
        if other.max_latency is not None:
            self.max_latency = (
                other.max_latency
                if self.max_latency is None
                else max(self.max_latency, other.max_latency)
            )
        self.histogram.merge(other.histogram)
        self.total_queueing += other.total_queueing
        self.total_network += other.total_network
        self.decomposed_count += other.decomposed_count
        for burst, acc in other._burst_acc.items():
            mine = self._burst_acc[burst]
            mine[0] += acc[0]
            mine[1] += acc[1]

    def reset(self) -> None:
        self.count = 0
        self.total_latency = 0
        self.min_latency = None
        self.max_latency = None
        self.histogram.reset()
        self.total_queueing = 0
        self.total_network = 0
        self.decomposed_count = 0
        self._burst_acc.clear()
