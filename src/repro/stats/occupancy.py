"""Buffer-occupancy reporting.

The switch parameter the paper highlights most is the buffer size
(Slide 6); this module turns the per-buffer occupancy sampling of the
network (``sample_buffers=True``) into the report a designer sizes
buffers from: mean/peak occupancy and full-time fraction per switch
input, the platform-wide hottest buffers, and a suggested depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network


@dataclass
class BufferStat:
    """Occupancy summary of one switch input buffer."""

    switch: int
    port: int
    capacity: int
    mean: float
    peak: int
    full_fraction: float

    @property
    def name(self) -> str:
        return f"sw{self.switch}.in{self.port}"

    @property
    def pressure(self) -> float:
        """Mean occupancy as a fraction of capacity (sizing signal)."""
        return self.mean / self.capacity if self.capacity else 0.0


class OccupancyReport:
    """Occupancy of every input buffer in a sampled network."""

    def __init__(self, network: "Network") -> None:
        if not network.sample_buffers:
            raise ValueError(
                "occupancy reporting needs a network built with"
                " sample_buffers=True (note: per-cycle sampling"
                " disables idle fast-forward; for mid-run occupancy"
                " at full speed use the windowed telemetry series"
                " instead — repro.telemetry.WindowedMetrics reports"
                " per-switch buffered flits at every window boundary"
                " with fast-forward and parking fully engaged)"
            )
        self.stats: List[BufferStat] = []
        for switch in network.switches:
            for port, buf in enumerate(switch.inputs):
                self.stats.append(
                    BufferStat(
                        switch=switch.switch_id,
                        port=port,
                        capacity=buf.capacity,
                        mean=buf.mean_occupancy,
                        peak=buf.peak_occupancy,
                        full_fraction=buf.full_fraction,
                    )
                )

    def hottest(self, n: int = 5) -> List[BufferStat]:
        """The ``n`` buffers with the highest mean occupancy."""
        return sorted(self.stats, key=lambda s: -s.mean)[:n]

    def peak_depth_used(self) -> int:
        """Deepest occupancy any buffer reached (lower bound on the
        depth that would have sufficed for this run)."""
        return max((s.peak for s in self.stats), default=0)

    def suggested_depth(self, slack: int = 1) -> int:
        """Peak depth used plus slack — a sizing suggestion for the
        next platform compilation."""
        return self.peak_depth_used() + max(0, slack)

    def mean_pressure(self) -> float:
        """Average occupancy fraction across all buffers."""
        if not self.stats:
            return 0.0
        return sum(s.pressure for s in self.stats) / len(self.stats)

    def render(self, top: int = 8) -> str:
        lines = [
            "buffer occupancy:",
            f"  peak depth used   : {self.peak_depth_used()}",
            f"  suggested depth   : {self.suggested_depth()}",
            f"  mean pressure     : {self.mean_pressure():.1%}",
            f"  hottest buffers (top {top}):",
        ]
        for stat in self.hottest(top):
            lines.append(
                f"    {stat.name:<10} mean {stat.mean:5.2f}/"
                f"{stat.capacity}  peak {stat.peak}"
                f"  full {stat.full_fraction:6.1%}"
            )
        return "\n".join(lines)
