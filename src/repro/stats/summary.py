"""Platform-wide metric readout for the experiment runner.

One emulation produces statistics scattered over devices: per-receptor
latency analyzers and congestion counters (Slide 11), per-switch
traversal counters, the engine's cycle/packet registers.  The sweep
runner needs them as one flat, JSON-serialisable record — and, because
sweeps run across worker processes and result caches, the record must
be a *deterministic* function of the scenario alone.  This module is
that readout: :func:`scenario_metrics` merges the receptor analyzers
(histograms included, so percentiles aggregate exactly) and emits only
reproducible quantities — wall-clock speed, the one non-deterministic
output of a run, is deliberately excluded and travels next to the
record, never inside it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.stats.congestion import (
    CongestionCounter,
    network_congestion_rate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import EngineResult
    from repro.core.platform import EmulationPlatform
    from repro.receptors.histogram import Histogram


def merged_latency_histogram(
    platform: "EmulationPlatform",
) -> Optional["Histogram"]:
    """All trace-driven receptors' latency histograms as one.

    Returns None when no receptor carries a latency analyzer (a pure
    stochastic-receptor platform) or the geometries differ.
    """
    # Receptor classes import the stats analyzers at module load, so
    # these imports must stay call-time to keep the package acyclic.
    from repro.receptors.histogram import Histogram
    from repro.receptors.tracedriven import TraceDrivenReceptor

    merged: Optional[Histogram] = None
    for receptor in platform.receptors:
        if not isinstance(receptor, TraceDrivenReceptor):
            continue
        hist = receptor.latency.histogram
        if merged is None:
            merged = Histogram(
                hist.n_bins, hist.bin_width, origin=hist.origin
            )
        try:
            merged.merge(hist)
        except ValueError:
            return None  # mixed geometries: no meaningful aggregate
    return merged


def scenario_metrics(
    platform: "EmulationPlatform", result: "EngineResult"
) -> Dict[str, Any]:
    """The deterministic metric record of one finished run.

    Latency aggregates are computed from exact totals (not means of
    means, which would weight receptors equally regardless of packet
    count); percentiles come from the merged fixed-bin histograms, so
    they match what a single platform-wide analyzer would have read.
    """
    from repro.receptors.tracedriven import TraceDrivenReceptor

    latency_count = 0
    latency_total = 0
    latency_min: Optional[int] = None
    latency_max: Optional[int] = None
    queueing_total = 0
    network_total = 0
    decomposed = 0
    stalls = CongestionCounter()
    flits_received = 0
    for receptor in platform.receptors:
        flits_received += receptor.flits_received
        if not isinstance(receptor, TraceDrivenReceptor):
            continue
        lat = receptor.latency
        latency_count += lat.count
        latency_total += lat.total_latency
        if lat.min_latency is not None and (
            latency_min is None or lat.min_latency < latency_min
        ):
            latency_min = lat.min_latency
        if lat.max_latency is not None and (
            latency_max is None or lat.max_latency > latency_max
        ):
            latency_max = lat.max_latency
        queueing_total += lat.total_queueing
        network_total += lat.total_network
        decomposed += lat.decomposed_count
        stalls.merge(receptor.congestion)

    hist = merged_latency_histogram(platform)
    cycles = result.cycles
    metrics: Dict[str, Any] = {
        # Runtime (Slide 18's "Our Emulation" axis).
        "cycles": cycles,
        "emulated_seconds": result.emulated_seconds,
        "completed": bool(result.completed),
        "packets_sent": result.packets_sent,
        "packets_received": result.packets_received,
        "cycles_per_packet": result.cycles_per_packet,
        # Throughput.
        "flits_received": flits_received,
        "accepted_flits_per_cycle": (
            flits_received / cycles if cycles else 0.0
        ),
        # Latency (Slide 22 metrics).
        "mean_latency": (
            latency_total / latency_count if latency_count else 0.0
        ),
        "min_latency": latency_min,
        "max_latency": latency_max,
        "p50_latency": hist.quantile(0.50) if hist and hist.total else None,
        "p95_latency": hist.quantile(0.95) if hist and hist.total else None,
        "mean_queueing_latency": (
            queueing_total / decomposed if decomposed else 0.0
        ),
        "mean_network_latency": (
            network_total / decomposed if decomposed else 0.0
        ),
        # Congestion (Slide 21 metrics).
        "congestion_rate": network_congestion_rate(platform.network),
        "total_stall_cycles": stalls.total_stall_cycles,
        "mean_stall_per_packet": stalls.mean_stall_per_packet,
        "congested_packet_fraction": stalls.congested_fraction,
    }
    faults = getattr(result, "faults", None)
    if faults is not None:
        # Degradation record (only the deterministic counters: repair
        # wall-clock latency stays out so cached/parallel/serial runs
        # keep bit-identical records).
        recoveries = [
            e.recovery_cycles
            for e in faults.events
            if e.recovery_cycles is not None
        ]
        metrics["fault_dropped_flits"] = faults.dropped_flits
        metrics["fault_dropped_packets"] = faults.dropped_packets
        metrics["fault_reroutes"] = len(faults.reroutes)
        metrics["fault_max_recovery_cycles"] = (
            max(recoveries) if recoveries else None
        )
        metrics["fault_degraded"] = bool(faults.degraded)
    windows = getattr(result, "windows", None)
    if windows is not None:
        # Windowed-telemetry series: boundary-differenced counters,
        # deterministic by construction (no wall-clock in any record),
        # so sweeps can aggregate time-resolved behaviour — e.g. the
        # onset of throughput collapse under a fault — straight from
        # cached records.
        metrics["window_series"] = [w.to_dict() for w in windows]
    return metrics
