"""Statistics reports and analysis (Slide 11).

Analyzer objects accumulate per-packet measurements; the monitor and
the benchmark harnesses read them out.  ``latency`` and ``congestion``
implement the two trace-driven analyses of the paper; ``throughput``
and ``runtime`` support the stochastic run-time figure (Slide 20) and
the speed comparison (Slide 18).
"""

from repro.stats.congestion import (
    CongestionCounter,
    network_congestion_rate,
)
from repro.stats.latency import LatencyAnalyzer
from repro.stats.occupancy import BufferStat, OccupancyReport
from repro.stats.runtime import RunTimeModel, SpeedReport
from repro.stats.summary import (
    merged_latency_histogram,
    scenario_metrics,
)
from repro.stats.throughput import ThroughputMeter

__all__ = [
    "BufferStat",
    "CongestionCounter",
    "LatencyAnalyzer",
    "OccupancyReport",
    "RunTimeModel",
    "SpeedReport",
    "ThroughputMeter",
    "merged_latency_histogram",
    "network_congestion_rate",
    "scenario_metrics",
]
