"""The congestion counter (trace-driven receptor, Slide 11).

Two complementary views of congestion are provided:

* :class:`CongestionCounter` — the receptor-side device: every flit
  accumulates the number of cycles it spent blocked (lost arbitration,
  no credits, channel held by another wormhole) on its way through the
  network; the counter aggregates these per received packet.
* :func:`network_congestion_rate` — the network-side rate used by the
  paper's Slide 21 figure: the fraction of switch-traversal attempts
  that were blocked, ``blocked / (blocked + forwarded)``.  It is 0 in
  an idle network and approaches 1 as the loaded links saturate.

Both views are *settlement-safe* under the event-driven kernel's
component parking (see ``repro.noc.network``): a fully blocked switch
or credit-starved NI leaves the per-cycle loop, and the stall ticks
its flits and counters would have accumulated are settled in bulk on
wake-up.  ``Flit.stall_cycles`` is therefore exact by the time a
packet completes (a parked flit cannot be delivered without waking
first), so :meth:`CongestionCounter.record` never sees a stale count;
``Switch.blocked_flit_cycles`` and friends are exposed as
settle-on-read properties, so :func:`network_congestion_rate` is exact
at any observation point, even while components are still parked.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.noc.flit import Flit, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network


class CongestionCounter:
    """Accumulates per-packet blocking observed at a receptor."""

    def __init__(self) -> None:
        self.packets = 0
        self.flits = 0
        self.total_stall_cycles = 0
        self.max_packet_stall = 0
        self.congested_packets = 0  # packets with any stalled flit

    def record(self, packet: Packet, flits: List[Flit]) -> int:
        """Record one completed packet; return its total stall cycles."""
        stall = sum(f.stall_cycles for f in flits)
        self.packets += 1
        self.flits += len(flits)
        self.total_stall_cycles += stall
        if stall > self.max_packet_stall:
            self.max_packet_stall = stall
        if stall:
            self.congested_packets += 1
        return stall

    @property
    def mean_stall_per_packet(self) -> float:
        """Average blocked cycles accumulated per packet."""
        return self.total_stall_cycles / self.packets if self.packets else 0.0

    @property
    def mean_stall_per_flit(self) -> float:
        """Average blocked cycles accumulated per flit."""
        return self.total_stall_cycles / self.flits if self.flits else 0.0

    @property
    def congested_fraction(self) -> float:
        """Fraction of packets that experienced any blocking."""
        return self.congested_packets / self.packets if self.packets else 0.0

    def merge(self, other: "CongestionCounter") -> None:
        self.packets += other.packets
        self.flits += other.flits
        self.total_stall_cycles += other.total_stall_cycles
        self.max_packet_stall = max(
            self.max_packet_stall, other.max_packet_stall
        )
        self.congested_packets += other.congested_packets

    def reset(self) -> None:
        self.packets = 0
        self.flits = 0
        self.total_stall_cycles = 0
        self.max_packet_stall = 0
        self.congested_packets = 0


def network_congestion_rate(network: "Network") -> float:
    """Fraction of switch-traversal attempts that were blocked.

    Aggregated over every switch since its statistics were last reset:
    ``blocked_flit_cycles / (blocked_flit_cycles + flits_forwarded)``.
    This is the "congestion rate" axis of the paper's Slide 21 figure
    (and the 90% operating point Slide 22's latency maximum refers to
    is the load of the hot links driving this rate up).
    """
    blocked = sum(sw.blocked_flit_cycles for sw in network.switches)
    forwarded = sum(sw.flits_forwarded for sw in network.switches)
    attempts = blocked + forwarded
    return blocked / attempts if attempts else 0.0
