"""Accepted-throughput measurement.

Not a named device in the paper, but required to verify the Slide 19
operating point (generators at 45% of maximum bandwidth; two links at
90%): the meter samples flit receptions over a window and reports
accepted flits per cycle, per node and aggregate.
"""

from __future__ import annotations

from typing import Dict, Optional


class ThroughputMeter:
    """Windowed throughput accounting over receptor counters."""

    def __init__(self) -> None:
        self._start_cycle: Optional[int] = None
        self._start_flits: Dict[int, int] = {}
        self._end_cycle: Optional[int] = None
        self._end_flits: Dict[int, int] = {}

    def open_window(self, cycle: int, flits_per_node: Dict[int, int]) -> None:
        """Snapshot counters at the start of the measurement window."""
        self._start_cycle = cycle
        self._start_flits = dict(flits_per_node)
        self._end_cycle = None
        self._end_flits = {}

    def close_window(self, cycle: int, flits_per_node: Dict[int, int]) -> None:
        """Snapshot counters at the end of the measurement window."""
        if self._start_cycle is None:
            raise RuntimeError("close_window before open_window")
        if cycle <= self._start_cycle:
            raise ValueError(
                f"window must span at least one cycle"
                f" ({self._start_cycle} -> {cycle})"
            )
        self._end_cycle = cycle
        self._end_flits = dict(flits_per_node)

    @property
    def window_cycles(self) -> int:
        if self._start_cycle is None or self._end_cycle is None:
            return 0
        return self._end_cycle - self._start_cycle

    def node_throughput(self, node: int) -> float:
        """Accepted flits per cycle at one node over the window."""
        cycles = self.window_cycles
        if cycles == 0:
            return 0.0
        delta = self._end_flits.get(node, 0) - self._start_flits.get(
            node, 0
        )
        return delta / cycles

    def aggregate_throughput(self) -> float:
        """Total accepted flits per cycle over all observed nodes."""
        cycles = self.window_cycles
        if cycles == 0:
            return 0.0
        nodes = set(self._start_flits) | set(self._end_flits)
        delta = sum(
            self._end_flits.get(n, 0) - self._start_flits.get(n, 0)
            for n in nodes
        )
        return delta / cycles
