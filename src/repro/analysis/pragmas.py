"""``# repro: allow[rule-id] reason`` pragma parsing.

A pragma suppresses findings of one rule on one line:

* as a trailing comment, it applies to its own line — the line of the
  AST node the rule reported (a call's first line, a ``__slots__``
  entry's line);
* on a comment-only line, it applies to that line *and* to the next
  line carrying code, so multi-line statements and annotated
  ``__slots__`` entries can be suppressed from directly above.

The reason is not optional: ``allow[wall-clock]`` with nothing after
the bracket is reported by the ``pragma-hygiene`` rule, as is an
``allow[...]`` naming a rule that does not exist.  Malformed spellings
that almost match (``# repro allow[...]``, ``# Repro: allow [...]``)
are reported too — a typo must fail loudly, not silently re-enable
the finding it meant to suppress.

Comments are found with :mod:`tokenize`, not a line regex, so pragma
text inside string literals (this docstring, test fixtures) is never
mistaken for a live suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Tuple

__all__ = ["PragmaSet", "parse_pragmas"]

#: The canonical spelling.  Reason = everything after the bracket.
_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_-]+)\]([^#]*)"
)

#: Near-miss detector: a comment mentioning ``repro`` and an
#: ``allow[...]`` bracket that the canonical pattern did not match.
_NEAR_MISS = re.compile(
    r"#.*\brepro\b.*allow\s*\[", re.IGNORECASE
)


class PragmaSet:
    """Parsed pragmas of one module.

    ``allow`` maps a 1-based line number to ``{rule_id: reason}``;
    ``problems`` is a list of ``(line, message)`` pairs for the
    ``pragma-hygiene`` rule (missing reasons, near-miss spellings —
    unknown rule ids are detected later, against the live registry).
    """

    def __init__(self) -> None:
        self.allow: Dict[int, Dict[str, str]] = {}
        self.problems: List[Tuple[int, str]] = []

    def allows(self, line: int, rule_id: str) -> bool:
        return rule_id in self.allow.get(line, ())

    def _add(self, line: int, rule_id: str, reason: str) -> None:
        self.allow.setdefault(line, {})[rule_id] = reason


def _comment_only(line: str) -> bool:
    return line.strip().startswith("#")


def _blank(line: str) -> bool:
    return not line.strip()


def _comments(text: str, lines: List[str]) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, comment_text)`` for every real comment.

    Tokenization keeps string literals out; if the source does not
    tokenize (fixtures with syntax errors), fall back to a plain line
    scan — over-matching beats silently dropping suppressions.
    """
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(text).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for idx, line in enumerate(lines):
            if "#" in line:
                yield idx + 1, line[line.index("#"):]
        return
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            yield tok.start[0], tok.string


def parse_pragmas(text: str, lines: List[str]) -> PragmaSet:
    """Extract every allow-pragma from a module's source."""
    pragmas = PragmaSet()
    for lineno, comment in _comments(text, lines):
        matches = list(_PRAGMA.finditer(comment))
        if not matches:
            if _NEAR_MISS.search(comment):
                pragmas.problems.append(
                    (
                        lineno,
                        "comment looks like a suppression but does not"
                        " match '# repro: allow[rule-id] reason'",
                    )
                )
            continue
        for match in matches:
            rule_id = match.group(1)
            reason = match.group(2).strip()
            if not reason:
                pragmas.problems.append(
                    (
                        lineno,
                        f"allow[{rule_id}] has no reason — every"
                        f" suppression must say why it is safe",
                    )
                )
            pragmas._add(lineno, rule_id, reason)
            idx = lineno - 1
            if idx < len(lines) and _comment_only(lines[idx]):
                # Comment-only pragma: also covers the next line that
                # carries code (skipping blanks and other comments).
                for j in range(idx + 1, len(lines)):
                    if _blank(lines[j]) or _comment_only(lines[j]):
                        continue
                    pragmas._add(j + 1, rule_id, reason)
                    break
    return pragmas
