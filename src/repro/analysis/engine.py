"""The lint engine: load, check, suppress, report.

:func:`run_lint` is the one entry point — the CLI subcommand, the
tier-1 gate and the unit tests all call it.  Suppression has exactly
two mechanisms, applied in order:

1. **Pragmas** — ``# repro: allow[rule-id] reason`` on the finding's
   line (or a comment-only line directly above it).
2. **Baseline** — a checked-in JSON file of accepted
   ``(rule, path, message)`` triples, for exceptions that cannot sit
   next to the code.

Whatever survives is a failure.  Hygiene problems — malformed
pragmas, missing reasons, pragmas naming unknown rules, stale
baseline entries — surface as findings of the built-in
``pragma-hygiene`` rule, so the suppression machinery cannot rot
silently.  Unparseable files are findings too (``parse-error``),
never silent skips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.project import Project, load_project
from repro.analysis.rules import ALL_RULES, HYGIENE_RULE_ID, RULES_BY_ID

__all__ = ["LintResult", "run_lint"]

PARSE_RULE_ID = "parse-error"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Unsuppressed findings, canonically sorted.  Non-empty = fail.
    findings: List[Finding]
    #: ``(finding, how)`` pairs removed by a pragma or the baseline.
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    #: Rule ids that ran, sorted.
    rules: List[str] = field(default_factory=list)
    #: Number of modules checked.
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _select_rules(rule_ids: Optional[Iterable[str]]):
    if rule_ids is None:
        return list(ALL_RULES)
    selected = []
    for rule_id in rule_ids:
        if rule_id not in RULES_BY_ID:
            known = ", ".join(sorted(RULES_BY_ID))
            raise ValueError(
                f"unknown rule {rule_id!r}; known rules: {known}"
            )
        selected.append(RULES_BY_ID[rule_id])
    return selected


def _hygiene_findings(project: Project) -> List[Finding]:
    findings = []
    for module in project:
        if module.parse_error is not None:
            findings.append(
                Finding(
                    rule=PARSE_RULE_ID,
                    path=module.path,
                    line=1,
                    message=f"file does not parse: {module.parse_error}",
                )
            )
        for line, message in module.pragmas.problems:
            findings.append(
                Finding(
                    rule=HYGIENE_RULE_ID,
                    path=module.path,
                    line=line,
                    message=message,
                )
            )
        for line, per_rule in sorted(module.pragmas.allow.items()):
            for rule_id in sorted(per_rule):
                if (
                    rule_id not in RULES_BY_ID
                    and rule_id != HYGIENE_RULE_ID
                    and rule_id != PARSE_RULE_ID
                ):
                    findings.append(
                        Finding(
                            rule=HYGIENE_RULE_ID,
                            path=module.path,
                            line=line,
                            message=(
                                f"allow[{rule_id}] names a rule that"
                                f" does not exist"
                            ),
                        )
                    )
    return findings


def run_lint(
    paths: Iterable[str],
    rule_ids: Optional[Iterable[str]] = None,
    baseline: Union[Baseline, str, None] = None,
    overlay: Optional[Dict[str, str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked).
    rule_ids:
        Run only these rules (default: all).  Hygiene checks always
        run.  Unknown ids raise ``ValueError``.
    baseline:
        A :class:`~repro.analysis.baseline.Baseline` or the path of a
        baseline file; matching findings are suppressed, stale
        entries are reported.
    overlay:
        ``{path: source_text}`` substitutions (see
        :func:`~repro.analysis.project.load_project`) so callers can
        lint hypothetical edits.
    """
    project = load_project(paths, overlay=overlay)
    rules = _select_rules(rule_ids)
    if isinstance(baseline, str):
        baseline = load_baseline(baseline)

    raw: List[Finding] = _hygiene_findings(project)
    for rule in rules:
        raw.extend(rule.check(project))

    findings: List[Finding] = []
    suppressed: List[Tuple[Finding, str]] = []
    by_path = {module.path: module for module in project}
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.pragmas.allows(
            finding.line, finding.rule
        ):
            reason = module.pragmas.allow[finding.line][finding.rule]
            suppressed.append((finding, f"pragma: {reason}"))
            continue
        if baseline is not None and baseline.matches(finding):
            suppressed.append((finding, "baseline"))
            continue
        findings.append(finding)

    if baseline is not None:
        for entry, description in baseline.stale_entries():
            findings.append(
                Finding(
                    rule=HYGIENE_RULE_ID,
                    path=entry["path"],
                    line=0,
                    message=description,
                )
            )

    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=lambda pair: pair[0].sort_key())
    ran = sorted(rule.id for rule in rules)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        rules=ran,
        files=len(project),
    )
