"""``repro lint`` — static enforcement of the kernel's conventions.

The emulation platform's correctness story rests on conventions that
ordinary tests exercise only indirectly: bit-identical determinism
(no wall clock, no ambient RNG, canonical JSON for everything hashed
or stored), complete checkpoint state coverage, settle-on-read access
to parked-stall counters, and wake-path registration at every parking
site.  This package checks those conventions *statically*, over the
AST of the source tree, so a violation fails CI the moment it is
written rather than the week a sweep stops reproducing.

Layout
------
:mod:`~repro.analysis.project`
    Loads ``.py`` files into :class:`~repro.analysis.project.Project`
    (source + AST + pragmas), with an *overlay* mechanism letting
    tests lint hypothetical edits without touching the tree.
:mod:`~repro.analysis.rules`
    The rule catalogue.  Each rule is a class with an ``id``, a
    ``description`` and a ``check(project)`` generator of findings.
:mod:`~repro.analysis.engine`
    :func:`~repro.analysis.engine.run_lint` — load, check, suppress
    (pragmas + baseline), and return a :class:`LintResult`.
:mod:`~repro.analysis.reporters`
    Text and stable-schema JSON rendering.

Suppression
-----------
A finding on line *N* is suppressed by ``# repro: allow[rule-id]
reason`` on line *N* itself, or on a comment-only line directly above
it.  The reason is mandatory — an allow without a justification is
itself a ``pragma-hygiene`` finding.  Findings that cannot carry a
pragma (cross-file coverage gaps during a migration) go in a checked-in
baseline file instead; see :mod:`~repro.analysis.baseline`.
"""

from repro.analysis.engine import LintResult, run_lint
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "RULES_BY_ID",
    "render_json",
    "render_text",
    "run_lint",
]
