"""Rendering lint results: human text and stable-schema JSON.

The JSON schema is versioned and covered by a schema-stability test
(``tests/analysis/test_reporters.py``); tools parsing ``repro lint
--format json`` may rely on exactly these keys::

    {
      "schema": 1,
      "ok": bool,
      "files": int,
      "rules": [rule-id, ...],
      "findings": [{"rule", "path", "line", "message"}, ...],
      "suppressed": int
    }

Output is canonical JSON (sorted keys, compact separators) via the
shared :func:`repro.util.canonical_json` encoder, so identical trees
produce byte-identical reports.
"""

from __future__ import annotations

from repro.analysis.engine import LintResult
from repro.util import canonical_json

__all__ = ["LINT_REPORT_SCHEMA", "render_json", "render_text"]

LINT_REPORT_SCHEMA = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if verbose:
        for finding, how in result.suppressed:
            lines.append(f"suppressed ({how}): {finding.render()}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun}"
        f" ({len(result.suppressed)} suppressed)"
        f" in {result.files} files"
        f" across {len(result.rules)} rules"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The versioned machine-readable report (canonical JSON)."""
    return canonical_json(
        {
            "schema": LINT_REPORT_SCHEMA,
            "ok": result.ok,
            "files": result.files,
            "rules": list(result.rules),
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": len(result.suppressed),
        }
    )
