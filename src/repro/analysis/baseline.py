"""Checked-in baselines: deliberate exceptions that outlive lines.

Pragmas suppress findings where the code is; a baseline suppresses
findings *about* code that cannot carry a pragma — typically coverage
gaps acknowledged during a migration, where the finding's line lives
in one file but the fix belongs in another.  Entries match on
``(rule, path-suffix, message)`` and deliberately *not* on line
number, so unrelated edits above a baselined site do not resurrect
its finding.

The file is canonical JSON (sorted keys, no spaces) so diffs are
stable and the encoder is the same
:func:`repro.util.canonical_json` the rest of the tree uses::

    {"entries":[{"message":"...","path":"...","rule":"..."}],"version":1}

An entry that matches nothing is itself reported (rule
``pragma-hygiene``): stale exceptions must be pruned, not hoarded.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.analysis.findings import Finding
from repro.util import canonical_json

__all__ = [
    "Baseline",
    "BASELINE_VERSION",
    "load_baseline",
    "render_baseline",
]

BASELINE_VERSION = 1


class Baseline:
    """A set of accepted findings, matched by rule/path/message."""

    def __init__(self, entries: List[Dict[str, str]]) -> None:
        self.entries = entries
        self._hits = [0] * len(entries)

    def matches(self, finding: Finding) -> bool:
        """True (and counted) when any entry accepts ``finding``."""
        for idx, entry in enumerate(self.entries):
            if entry["rule"] != finding.rule:
                continue
            if entry["message"] != finding.message:
                continue
            path = entry["path"]
            if finding.path != path and not finding.path.endswith(
                "/" + path
            ):
                continue
            self._hits[idx] += 1
            return True
        return False

    def stale_entries(self) -> List[Tuple[Dict[str, str], str]]:
        """Entries that matched no finding, with a description."""
        stale = []
        for idx, entry in enumerate(self.entries):
            if not self._hits[idx]:
                stale.append(
                    (
                        entry,
                        f"stale baseline entry: no current"
                        f" [{entry['rule']}] finding in"
                        f" {entry['path']} says {entry['message']!r}",
                    )
                )
        return stale


def _validate(record: Any, where: str) -> List[Dict[str, str]]:
    if (
        not isinstance(record, dict)
        or record.get("version") != BASELINE_VERSION
        or not isinstance(record.get("entries"), list)
    ):
        raise ValueError(
            f"{where}: not a version-{BASELINE_VERSION} lint baseline"
        )
    entries = []
    for entry in record["entries"]:
        if not isinstance(entry, dict) or set(entry) != {
            "rule",
            "path",
            "message",
        }:
            raise ValueError(
                f"{where}: baseline entries need exactly the keys"
                f" rule/path/message, got {entry!r}"
            )
        entries.append(
            {key: str(entry[key]) for key in ("rule", "path", "message")}
        )
    return entries


def load_baseline(path: str) -> Baseline:
    """Read and validate a baseline file."""
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    return Baseline(_validate(record, path))


def render_baseline(findings: List[Finding]) -> str:
    """The canonical baseline text accepting exactly ``findings``."""
    entries = sorted(
        {
            (f.rule, f.path, f.message)
            for f in findings
        }
    )
    return canonical_json(
        {
            "version": BASELINE_VERSION,
            "entries": [
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in entries
            ],
        }
    )
