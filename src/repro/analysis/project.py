"""Source loading: files -> parsed modules with pragmas.

A :class:`Project` is the unit a rule checks: every module's source
text, AST, and parsed pragmas, addressable by posix-path suffix so
the same rule configuration ("the capture module is
``repro/checkpoint/capture.py``") works for the real tree, for test
fixtures in temporary directories, and for overlays.

Overlays
--------
``load_project(paths, overlay={...})`` substitutes source text by
path: a key matching a loaded file (exact path or posix-suffix match)
replaces that file's text; an unmatched key becomes a virtual module.
Tests use this to ask "what would the lint say if this captured field
were deleted?" without editing the tree.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.pragmas import PragmaSet, parse_pragmas

__all__ = ["ModuleSource", "Project", "load_project"]


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


class ModuleSource:
    """One parsed module: path, text, lines, AST, pragmas."""

    def __init__(self, path: str, text: str) -> None:
        self.path = _posix(path)
        self.text = text
        self.lines = text.splitlines()
        self.parse_error: Optional[str] = None
        try:
            self.tree: ast.Module = ast.parse(text, filename=path)
        except SyntaxError as exc:
            self.parse_error = f"{exc.msg} (line {exc.lineno})"
            self.tree = ast.Module(body=[], type_ignores=[])
        self.pragmas: PragmaSet = parse_pragmas(text, self.lines)

    def matches(self, suffix: str) -> bool:
        """True when this module *is* ``suffix`` (posix-path match)."""
        suffix = _posix(suffix)
        return self.path == suffix or self.path.endswith("/" + suffix)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ModuleSource({self.path!r})"


class Project:
    """The set of modules one lint run checks."""

    def __init__(self, modules: List[ModuleSource]) -> None:
        self.modules = modules

    def module(self, suffix: str) -> Optional[ModuleSource]:
        for mod in self.modules:
            if mod.matches(suffix):
                return mod
        return None

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


def _walk_python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    # Deduplicate while keeping deterministic order.
    seen = set()
    unique = []
    for path in files:
        norm = os.path.normpath(path)
        if norm not in seen:
            seen.add(norm)
            unique.append(norm)
    return unique


def _overlay_text(
    path: str, overlay: Dict[str, str]
) -> Tuple[Optional[str], Optional[str]]:
    """The overlay (key, text) applying to ``path``, if any."""
    posix = _posix(path)
    for key, text in overlay.items():
        key_px = _posix(key)
        if posix == key_px or posix.endswith("/" + key_px):
            return key, text
    return None, None


def load_project(
    paths: Iterable[str],
    overlay: Optional[Dict[str, str]] = None,
) -> Project:
    """Load every ``.py`` file under ``paths`` into a project.

    ``overlay`` maps paths (exact or posix suffixes of loaded files)
    to replacement source text; unmatched keys are added as virtual
    modules so fixtures need not exist on disk.
    """
    overlay = dict(overlay or {})
    matched_keys = set()
    modules: List[ModuleSource] = []
    for path in _walk_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        key, replacement = _overlay_text(path, overlay)
        if key is not None:
            matched_keys.add(key)
            text = replacement if replacement is not None else text
        modules.append(ModuleSource(path, text))
    for key in sorted(overlay):
        if key not in matched_keys:
            modules.append(ModuleSource(key, overlay[key]))
    return Project(modules)
