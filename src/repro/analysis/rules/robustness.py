"""Robustness rules: failures must surface, not vanish.

``swallowed-exception``
    No bare ``except:`` / ``except BaseException:`` that neither
    re-raises nor converts the failure into a structured error or
    report object.  A handler that catches *everything* and drops it
    on the floor turns crashes into silent wrong answers — the exact
    failure mode the sweep supervisor exists to prevent.  Cleanup
    handlers that re-raise (the atomic-write pattern) and handlers
    that build a structured record (``FailureRecord(...)``,
    ``SomeError(...)``) pass; anything else needs a pragma saying why
    swallowing is safe there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.rules import Rule, dotted_name

__all__ = ["SwallowedExceptionRule"]

#: Constructor-name suffixes that count as converting the failure
#: into structured data instead of swallowing it.
_STRUCTURED_SUFFIXES = (
    "Error",
    "Report",
    "Record",
    "Crash",
    "Timeout",
    "Finding",
)


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """True for ``except:`` and any clause naming BaseException."""
    if handler.type is None:
        return True
    clauses = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for clause in clauses:
        name = dotted_name(clause)
        if name is not None and name.split(".")[-1] == "BaseException":
            return True
    return False


def _handles_structurally(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or builds a structured error."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1].endswith(
                    _STRUCTURED_SUFFIXES
                ):
                    return True
    return False


class SwallowedExceptionRule(Rule):
    id = "swallowed-exception"
    description = (
        "bare except / except BaseException that neither re-raises"
        " nor builds a structured error/report swallows failures"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _catches_everything(node):
                    continue
                if _handles_structurally(node):
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    "catch-everything handler swallows the failure;"
                    " re-raise, build a structured error/report, or"
                    " narrow the exception type",
                )
