"""``state-coverage``: checkpoints must cover every mutable field.

Checkpoint/restore (PR 8) round-trips the platform bit-identically —
but only for the state it knows about.  The historical failure mode
of hand-enumerated snapshots is the *silently missing field*: someone
adds ``_new_counter`` to ``Switch.__slots__``, every existing test
passes (fresh runs never notice), and weeks later a warm-started
sweep diverges from its cold twin.  This rule closes that hole
statically:

1. Enumerate the mutable state of every platform-reachable class in
   ``noc/``, ``traffic/``, ``faults/`` and ``telemetry/`` — its
   ``__slots__`` entries, its dataclass fields, or (lacking both) its
   ``self.x = ...`` assignments in ``__init__``.
2. Collect the attribute names ``checkpoint/capture.py`` reads
   (attribute access + ``getattr`` literals) and the names
   ``checkpoint/restore.py`` writes (attribute access + constructor
   keyword arguments).  When capture delegates to a checked class's
   own ``to_dict()`` (record dataclasses like ``WindowRecord``), the
   ``self.<field>`` reads inside that method count as captured — the
   method is honorary capture code.
3. A field not in the *intersection* is a finding: deleting a
   captured field from ``capture.py`` alone, or adding a slot without
   restore support, both fail the gate.

Matching is by *name*, not by type — the checker has no type
inference, so a field name read anywhere in ``capture.py`` counts as
captured for every class owning that name.  That approximation leans
safe-by-convention (this codebase names state distinctly per class)
and keeps the rule dependency-free.  Structural fields a checkpoint
deliberately rebuilds (wiring, callbacks, caches) carry per-line
``# repro: allow[state-coverage] reason`` pragmas — the reason string
is the documentation of *why* the field needs no serialization.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.rules import Rule

__all__ = ["StateCoverageRule", "CHECKED_CLASSES"]

CAPTURE_MODULE = "repro/checkpoint/capture.py"
RESTORE_MODULE = "repro/checkpoint/restore.py"

#: Module suffix -> platform-reachable classes whose state must be
#: checkpointed.  Structural families (topology, routing) are rebuilt
#: from the spec and deliberately absent.
CHECKED_CLASSES: Dict[str, Tuple[str, ...]] = {
    "repro/noc/switch.py": ("Switch", "_OutputPort"),
    "repro/noc/ni.py": ("NetworkInterface", "ReassemblyBuffer"),
    "repro/noc/link.py": ("Link",),
    "repro/noc/buffer.py": ("FlitBuffer",),
    "repro/noc/flit.py": ("Packet", "Flit"),
    "repro/noc/network.py": ("Network",),
    "repro/noc/arbiter.py": (
        "Arbiter",
        "FixedPriorityArbiter",
        "RoundRobinArbiter",
        "MatrixArbiter",
    ),
    "repro/traffic/generator.py": ("TrafficGenerator",),
    "repro/traffic/base.py": ("TrafficModel",),
    "repro/traffic/uniform.py": ("UniformTraffic",),
    "repro/traffic/poisson.py": ("PoissonTraffic",),
    "repro/traffic/burst.py": ("BurstTraffic",),
    "repro/traffic/onoff.py": ("OnOffTraffic",),
    "repro/traffic/trace.py": ("TraceTraffic",),
    "repro/traffic/rng.py": ("Lfsr32", "LfsrRandom"),
    "repro/faults/injector.py": ("FaultInjector",),
    "repro/faults/report.py": (
        "FaultReport",
        "FaultEventRecord",
        "FaultWindow",
    ),
    "repro/telemetry/windows.py": ("WindowedMetrics", "WindowRecord"),
}


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", None)
        )
        if name == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name) and sub.id == "ClassVar":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "ClassVar":
            return True
    return False


def class_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """``(field, line)`` pairs of one class's mutable state.

    Priority: ``__slots__`` entries (each on its own line in this
    codebase, so pragmas attach per entry), else dataclass fields,
    else ``self.x = ...`` targets in ``__init__``.
    """
    slots: List[Tuple[str, int]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                for element in stmt.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        slots.append((element.value, element.lineno))
    if slots:
        return slots
    if _is_dataclass_decorated(node):
        fields = []
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not _is_classvar(stmt.annotation)
            ):
                fields.append((stmt.target.id, stmt.lineno))
        return fields
    fields = []
    seen: Set[str] = set()
    for stmt in node.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "__init__"
        ):
            for sub in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    targets = [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in seen
                    ):
                        seen.add(target.attr)
                        fields.append((target.attr, target.lineno))
    return fields


def _to_dict_reads(node: ast.ClassDef) -> Set[str]:
    """``self.<attr>`` reads inside the class's ``to_dict`` method."""
    names: Set[str] = set()
    for stmt in node.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "to_dict"
        ):
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    names.add(sub.attr)
    return names


def _attribute_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("getattr", "setattr", "hasattr")
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            names.add(node.args[1].value)
    return names


def _keyword_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    names.add(keyword.arg)
    return names


class StateCoverageRule(Rule):
    id = "state-coverage"
    description = (
        "every mutable field of a platform-reachable class must be"
        " read by checkpoint/capture.py and written by"
        " checkpoint/restore.py (or carry a pragma saying why it is"
        " rebuilt instead)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        capture = project.module(CAPTURE_MODULE)
        restore = project.module(RESTORE_MODULE)
        if capture is None or restore is None:
            # A partial lint (single files) cannot evaluate coverage;
            # the tier-1 gate always runs over the whole tree.
            return
        captured = _attribute_names(capture.tree)
        restored = _attribute_names(restore.tree) | _keyword_names(
            restore.tree
        )
        for suffix, class_names in sorted(CHECKED_CLASSES.items()):
            module = project.module(suffix)
            if module is None:
                continue
            for node in ast.walk(module.tree):
                if (
                    not isinstance(node, ast.ClassDef)
                    or node.name not in class_names
                ):
                    continue
                class_captured = captured
                if "to_dict" in captured:
                    # Capture delegates to <instance>.to_dict(): the
                    # method's own field reads are capture coverage.
                    class_captured = captured | _to_dict_reads(node)
                for field, line in class_fields(node):
                    missing = []
                    if field not in class_captured:
                        missing.append(
                            "not read by checkpoint/capture.py"
                        )
                    if field not in restored:
                        missing.append(
                            "not written by checkpoint/restore.py"
                        )
                    if missing:
                        yield self.finding(
                            module,
                            line,
                            f"{node.name}.{field} is mutable state"
                            f" {' and '.join(missing)}; checkpoint it"
                            f" or pragma why it is rebuilt",
                        )
