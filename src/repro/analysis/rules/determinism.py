"""Determinism rules: the emulation must be a pure function of the spec.

Bit-identical reproduction — same spec, same metrics, same hashes, on
any machine, in any process — is the platform's core contract (the
parity suites enforce it dynamically; these rules enforce its
preconditions statically):

``wall-clock``
    No reading the host clock.  ``time.time`` & friends smuggle the
    machine's speed into results; the only sanctioned uses are
    telemetry/benchmark timing, each carrying an allow-pragma saying
    why its value never reaches a deterministic record.
``unseeded-rng``
    No ambient randomness.  Every stochastic choice flows through the
    seeded LFSR streams in ``repro/traffic/rng.py``.
``unsorted-set-iter``
    No iterating sets into anything ordered.  Set order varies with
    insertion history (and, for strings, the per-process hash seed),
    so a set feeding a loop, ``list()``, or ``join`` is ordering
    roulette — wrap it in ``sorted()``.
``id-ordering``
    No ordering by ``id()``.  Addresses differ across processes, so
    ``sort(key=id)`` is per-run order.  (Using ``id()`` as a dict
    *key* for identity lookup is fine and common in capture code.)
``canonical-json``
    No hand-rolled ``json.dump(s)``.  Everything serialized goes
    through :func:`repro.util.canonical_json` so sorted keys and
    compact separators cannot drift per call site; human-facing
    exports (Perfetto traces) carry pragmas.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.rules import (
    Rule,
    dotted_name,
    import_map,
    iter_calls,
    resolve_call,
)

__all__ = [
    "CanonicalJsonRule",
    "IdOrderingRule",
    "UnseededRngRule",
    "UnsortedSetIterRule",
    "WallClockRule",
]

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    id = "wall-clock"
    description = (
        "host-clock reads (time.time/perf_counter/...) are forbidden"
        " in deterministic code; pragma the telemetry exceptions"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            imports = import_map(module.tree)
            for call in iter_calls(module.tree):
                full = resolve_call(call, imports)
                if full in _WALL_CLOCK:
                    yield self.finding(
                        module,
                        call.lineno,
                        f"{full}() reads the host clock; emulation"
                        f" results must be a pure function of the"
                        f" spec",
                    )


#: Ambient-randomness sources.  Exact names or dotted prefixes.
_RNG_EXACT = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}
_RNG_PREFIXES = ("random.", "secrets.", "numpy.random.")

#: The one module allowed to wrap randomness: the seeded LFSR streams.
_RNG_HOME = "repro/traffic/rng.py"


class UnseededRngRule(Rule):
    id = "unseeded-rng"
    description = (
        "ambient randomness (random/os.urandom/uuid) is forbidden"
        " outside the seeded LFSR module repro/traffic/rng.py"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            if module.matches(_RNG_HOME):
                continue
            imports = import_map(module.tree)
            for call in iter_calls(module.tree):
                full = resolve_call(call, imports)
                if full is None:
                    continue
                if full in _RNG_EXACT or full.startswith(_RNG_PREFIXES):
                    yield self.finding(
                        module,
                        call.lineno,
                        f"{full}() is ambient randomness; derive a"
                        f" seeded stream via repro.traffic.rng"
                        f" instead",
                    )


#: Call/attribute forms that produce a set.
_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
#: Builtins that materialize iteration order from their argument.
_ORDER_SINKS = {"list", "tuple", "enumerate", "iter"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
        ):
            return True
    return False


class UnsortedSetIterRule(Rule):
    id = "unsorted-set-iter"
    description = (
        "iterating a set expression into ordered output is"
        " nondeterministic; wrap it in sorted()"
    )

    def _flag(self, node: ast.AST) -> bool:
        return _is_set_expr(node)

    def check(self, project: Project) -> Iterator[Finding]:
        message = (
            "iteration order of a set is not deterministic across"
            " processes; wrap it in sorted(...)"
        )
        for module in project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.For) and self._flag(node.iter):
                    yield self.finding(module, node.iter.lineno, message)
                elif isinstance(
                    node,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                     ast.DictComp),
                ):
                    for comp in node.generators:
                        if self._flag(comp.iter):
                            yield self.finding(
                                module, comp.iter.lineno, message
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    sink = (
                        isinstance(func, ast.Name)
                        and func.id in _ORDER_SINKS
                    ) or (
                        isinstance(func, ast.Attribute)
                        and func.attr == "join"
                    )
                    if sink and node.args and self._flag(node.args[0]):
                        yield self.finding(
                            module, node.lineno, message
                        )


_ORDERING_FUNCS = {"sorted", "min", "max"}


def _mentions_id(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "id":
            return True
    return False


class IdOrderingRule(Rule):
    id = "id-ordering"
    description = (
        "ordering by id() is per-process memory layout; order by a"
        " stable field instead"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            for call in iter_calls(module.tree):
                func = call.func
                is_ordering = (
                    isinstance(func, ast.Name)
                    and func.id in _ORDERING_FUNCS
                ) or (
                    isinstance(func, ast.Attribute)
                    and func.attr == "sort"
                )
                for keyword in call.keywords:
                    if keyword.arg == "key" and _mentions_id(
                        keyword.value
                    ):
                        yield self.finding(
                            module,
                            call.lineno,
                            "key function built on id() orders by"
                            " memory address, which differs per"
                            " process",
                        )
                        break
                else:
                    if is_ordering and any(
                        _mentions_id(arg) for arg in call.args
                    ):
                        yield self.finding(
                            module,
                            call.lineno,
                            "ordering over id() values is per-process"
                            " memory layout",
                        )


#: The one module allowed to call json.dumps: the shared encoder.
_ENCODER_HOME = "repro/util.py"


class CanonicalJsonRule(Rule):
    id = "canonical-json"
    description = (
        "json.dump/json.dumps outside repro/util.py; use"
        " repro.util.canonical_json so key order and separators"
        " cannot drift"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            if module.matches(_ENCODER_HOME):
                continue
            imports = import_map(module.tree)
            for call in iter_calls(module.tree):
                full = resolve_call(call, imports)
                if full in ("json.dump", "json.dumps"):
                    yield self.finding(
                        module,
                        call.lineno,
                        f"{full}() hand-rolls serialization; use"
                        f" repro.util.canonical_json (pragma only"
                        f" human-facing exports)",
                    )
