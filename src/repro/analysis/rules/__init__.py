"""The rule catalogue and shared AST plumbing.

Adding a rule
-------------
1. Subclass :class:`Rule` in the fitting module (or a new one): set
   ``id`` (kebab-case, becomes the pragma name), ``description``, and
   implement ``check(project)`` yielding
   :class:`~repro.analysis.findings.Finding` objects whose ``line``
   is where a suppressing pragma should sit.
2. Append an instance to ``ALL_RULES`` below.
3. Add a violating/clean fixture pair in ``tests/analysis/`` and a
   row to the catalogue table in ``ROADMAP.md``.

Rules receive the whole :class:`~repro.analysis.project.Project`, not
one module at a time, because the deepest checks are cross-module
(checkpoint coverage diffs class definitions in ``noc/`` against
reads in ``checkpoint/``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleSource, Project

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "dotted_name",
    "import_map",
    "iter_calls",
    "resolve_call",
]


class Rule:
    """Base class: one convention, one pragma id."""

    id: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, line: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.id, path=module.path, line=line, message=message
        )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully-qualified imported name.

    ``import time`` maps ``time -> time``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Relative
    imports are skipped — they cannot reach the stdlib modules the
    determinism rules care about.
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    names[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                names[local] = f"{node.module}.{alias.name}"
    return names


def resolve_call(
    node: ast.Call, imports: Dict[str, str]
) -> Optional[str]:
    """The canonical dotted name a call resolves to, or None.

    Only resolves when the head name was introduced by an import —
    ``self.time.time()`` or a local variable named ``random`` never
    match.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in imports:
        return None
    full = imports[head]
    return f"{full}.{rest}" if rest else full


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
from repro.analysis.rules.determinism import (  # noqa: E402
    CanonicalJsonRule,
    IdOrderingRule,
    UnseededRngRule,
    UnsortedSetIterRule,
    WallClockRule,
)
from repro.analysis.rules.parking import ParkingWakeRule  # noqa: E402
from repro.analysis.rules.robustness import (  # noqa: E402
    SwallowedExceptionRule,
)
from repro.analysis.rules.settlement import SettleOnReadRule  # noqa: E402
from repro.analysis.rules.state_coverage import (  # noqa: E402
    StateCoverageRule,
)

ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRngRule(),
    UnsortedSetIterRule(),
    IdOrderingRule(),
    CanonicalJsonRule(),
    StateCoverageRule(),
    SettleOnReadRule(),
    ParkingWakeRule(),
    SwallowedExceptionRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

#: The id the engine's built-in pragma/baseline hygiene findings use.
HYGIENE_RULE_ID = "pragma-hygiene"
