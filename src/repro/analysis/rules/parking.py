"""``parking-wake``: every park must register the event that unparks it.

The event kernel's cardinal invariant: a parked component is *off the
scan lists* and only runs again when the event it parked on fires.
Parking without arming that event is a silent hang — the input sits
parked forever while the drain-timeout machinery eventually aborts
the run.  Three park sites exist, each with its own wake protocol:

switch inputs (``self._park_input(i, now, head, credit)``)
    A park on a blocked *head* flit (3rd argument not ``None``) must
    be followed — within the next two statements of the same block —
    by appending the input to the output's ``credit_waiters`` or
    ``lock_waiters`` list.  A ``None`` head is the store-and-forward
    accumulation case: the wake is the arrival of the packet's own
    remaining flits, no waiter list involved.

network interfaces (``ni._park(now)``)
    Only legal inside an ``if`` that tested the NI's ``_credits``:
    the credit-return path is the implicit waker, so parking on any
    other condition would never be woken.

generators (``self._bp_since = <cycle>``)
    Opening a backpressure stretch must be paired with
    ``watch_drain(...)`` later in the same block, which re-polls the
    generator when the NI queue drains below its limit.

The rule is syntactic and local by design — it checks call *sites*,
matching how the invariant is maintained in practice (wake
registration sits immediately next to the park).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.rules import Rule

__all__ = ["ParkingWakeRule"]

_WAITER_LISTS = {"credit_waiters", "lock_waiters"}


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _registers_waiter(stmt: ast.stmt) -> bool:
    """``<x>.credit_waiters.append(...)`` / lock_waiters ditto."""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in _WAITER_LISTS
        ):
            return True
    return False


def _calls_watch_drain(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "watch_drain"
        ):
            return True
    return False


def _reads_credits(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "_credits":
            return True
    return False


def _statement_lists(tree: ast.AST) -> Iterator[List[ast.stmt]]:
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                yield block


class ParkingWakeRule(Rule):
    id = "parking-wake"
    description = (
        "a park site must register its wake path: waiter-list append"
        " for switch inputs, a _credits guard for NI parks,"
        " watch_drain for generator backpressure"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            yield from self._check_module(module)

    def _check_module(self, module) -> Iterator[Finding]:
        tree = module.tree
        # NI parks: collect every `<x>._park(...)` call, then strike
        # out those under an `if` whose test read `_credits`.
        park_calls = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_park"
            ):
                park_calls.append(node)
        guarded = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and _reads_credits(node.test):
                for sub in ast.walk(node):
                    if sub in park_calls:
                        guarded.add(id(sub))
        for call in park_calls:
            if id(call) not in guarded:
                yield self.finding(
                    module,
                    call.lineno,
                    "._park() outside an `if ... _credits ...` guard:"
                    " nothing will return a credit to wake this NI",
                )
        # Switch-input parks and generator backpressure stretches are
        # block-local patterns.
        for block in _statement_lists(tree):
            for idx, stmt in enumerate(block):
                yield from self._check_park_input(module, block, idx)
                yield from self._check_bp_since(module, block, idx)

    def _check_park_input(
        self, module, block: List[ast.stmt], idx: int
    ) -> Iterator[Finding]:
        stmt = block[idx]
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "_park_input"
        ):
            return
        call = stmt.value
        head = call.args[2] if len(call.args) > 2 else None
        if head is None or _is_none(head):
            return  # store-and-forward accumulation: no waiter list
        if any(
            _registers_waiter(later) for later in block[idx + 1:idx + 3]
        ):
            return
        yield self.finding(
            module,
            stmt.lineno,
            "_park_input() with a blocked head flit but no"
            " credit_waiters/lock_waiters registration in the next"
            " two statements: this input would never wake",
        )

    def _check_bp_since(
        self, module, block: List[ast.stmt], idx: int
    ) -> Iterator[Finding]:
        stmt = block[idx]
        if not isinstance(stmt, ast.Assign):
            return
        opens = any(
            isinstance(t, ast.Attribute) and t.attr == "_bp_since"
            for t in stmt.targets
        )
        if not opens or _is_none(stmt.value):
            return
        if any(
            _calls_watch_drain(later) for later in block[idx + 1:]
        ):
            return
        yield self.finding(
            module,
            stmt.lineno,
            "opening a backpressure stretch (_bp_since = ...) without"
            " a watch_drain(...) registration in the same block: the"
            " generator would never be polled again",
        )
