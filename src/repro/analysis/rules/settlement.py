"""``settle-on-read``: raw parked-stall counters stay behind properties.

The event kernel parks idle inputs/NIs/generators and back-fills
their stall counters lazily when they wake ("settle").  Between park
and settle the raw backing fields (``_blocked_flit_cycles``,
``_credit_stall_cycles``, ``_stall_cycles``, ``_backpressure_cycles``)
under-report by the still-open parked stretch; only the settle-on-read
properties (``blocked_flit_cycles``, ``stall_cycles``,
``backpressure_cycles``, ``stats_snapshot()``) add the pending delta
back.  A raw read outside the owning module is therefore a
mid-parked-stretch data race against the wake machinery — the classic
"telemetry counted fewer stalls than the reference kernel" bug this
repo has fixed more than once.

The rule flags any attribute access to a listed field outside its
owner module(s).  ``checkpoint/capture.py`` and
``checkpoint/restore.py`` are sanctioned everywhere: checkpoints run
at a settled boundary by construction and must see the raw fields.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.rules import Rule

__all__ = ["SettleOnReadRule"]

#: Raw field -> module suffixes owning (and allowed to touch) it.
RAW_FIELD_OWNERS: Dict[str, Tuple[str, ...]] = {
    "_blocked_flit_cycles": ("repro/noc/switch.py",),
    "_credit_stall_cycles": ("repro/noc/switch.py",),
    # The network's inlined NI-inject fast path co-owns the NI stall
    # counter (it bumps it in place of ni.step).
    "_stall_cycles": ("repro/noc/ni.py", "repro/noc/network.py"),
    "_backpressure_cycles": ("repro/traffic/generator.py",),
    # The open-stretch marker itself: reading it raw outside the
    # generator races the same settlement the counters do.
    "_bp_since": ("repro/traffic/generator.py",),
}

#: Checkpoint code snapshots/rebuilds raw state at settled boundaries.
SANCTIONED = (
    "repro/checkpoint/capture.py",
    "repro/checkpoint/restore.py",
)


class SettleOnReadRule(Rule):
    id = "settle-on-read"
    description = (
        "raw parked-stall backing fields may only be touched by their"
        " owner module; read the settle-on-read property instead"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project:
            if any(module.matches(s) for s in SANCTIONED):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                owners = RAW_FIELD_OWNERS.get(node.attr)
                if owners is None:
                    continue
                if any(module.matches(owner) for owner in owners):
                    continue
                prop = node.attr.lstrip("_")
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw field {node.attr} under-reports while"
                    f" parked; use the settle-on-read property"
                    f" {prop!r} (or stats_snapshot()) outside"
                    f" {', '.join(owners)}",
                )
