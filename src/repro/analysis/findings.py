"""The unit of lint output: one rule violation at one source line."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is the project-relative posix path of the offending
    module and ``line`` the 1-based line of the AST node that
    triggered the rule — which is where a suppressing pragma must sit
    (same line, or a comment-only line directly above).
    """

    rule: str
    path: str
    line: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
