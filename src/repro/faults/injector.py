"""Online fault application and repair.

The :class:`FaultInjector` drives a :class:`FaultSchedule` against a
live :class:`~repro.core.platform.EmulationPlatform`.  The engine calls
:meth:`tick` at the top of every cycle the injector asked to see
(``tick`` returns the next such cycle), before the network's credit
phase, so every settlement the application performs runs through
``now - 1`` — exactly the cycles already emulated.

Everything the injector mutates goes through shared component code
(:meth:`Network.abort_packets`, the parking wake lists, the dense
route recompilation), so the event-driven kernel and the
``step_reference`` oracle stay bit-identical under faults — the parity
suite in ``tests/faults`` pins this.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import ConfigError, UnroutableError
from repro.faults.report import (
    FaultEventRecord,
    FaultReport,
    FaultWindow,
)
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.noc.deadlock import is_deadlock_free
from repro.noc.routing import (
    build_multipath_tables,
    build_shortest_path_tables,
    build_updown_tables,
)
from repro.traffic.rng import derive_stream_seed

#: Sentinel "no further work" cycle, matching the engine's never-poll.
NEVER = 1 << 62


class FaultInjector:
    """Applies a fault schedule to a live platform, cycle-accurately."""

    def __init__(self, schedule: FaultSchedule, platform) -> None:
        self.schedule = schedule
        self.platform = platform  # repro: allow[state-coverage] platform reference; re-attached when the injector is rebuilt
        network = platform.network
        topo = platform.topology
        self._events: Tuple[FaultEvent, ...] = schedule.events  # repro: allow[state-coverage] derived from the schedule, which is captured whole
        self._next_idx = 0
        #: Directed switch pairs currently avoided by repair.
        self._dead_pairs: Set[Tuple[int, int]] = set()
        #: Saved ``_input_credit`` entries of inputs whose feeding link
        #: is down (keyed by (switch_id, input port)); restored on
        #: ``link_up``.  While the entry is None, downstream pops
        #: schedule no credit toward the dead upstream port.
        self._saved_credit: Dict[Tuple[int, int], tuple] = {}
        #: Active flaky windows: (event, links, threshold, record).
        self._flaky: List[tuple] = []
        #: Events whose fabric-level recovery (first delivery after
        #: application) is still unobserved: (record, packets_then).
        self._awaiting: List[tuple] = []
        self.report = FaultReport()
        self._boundary_cycle = 0
        self._boundary_packets = 0
        self._boundary_label = "pre-fault"
        # Static validation against the elaborated network.
        for e in self._events:
            if e.a is not None and not network.switch_links.get(
                (e.a, e.b)
            ):
                raise ConfigError(
                    f"fault schedule names link {e.a}->{e.b}, which"
                    f" does not exist in the topology"
                )
            if e.switch is not None and not (
                0 <= e.switch < topo.n_switches
            ):
                raise ConfigError(
                    f"fault schedule names switch {e.switch}, out of"
                    f" range [0, {topo.n_switches})"
                )

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    @property
    def faulted(self) -> bool:
        """True once at least one event has been applied."""
        return bool(self.report.events) or bool(self._flaky)

    def begin(self, now: int) -> int:
        """Open the pre-fault window; return the first tick cycle."""
        self._boundary_cycle = now
        self._boundary_packets = self.platform.packets_received
        return self._wake_cycle(now)

    def tick(self, now: int) -> int:
        """Apply everything due at ``now``; return the next tick cycle.

        Cheap and idempotent when nothing is due, so lockstep parity
        harnesses may call it every cycle.
        """
        events = self._events
        while (
            self._next_idx < len(events)
            and events[self._next_idx].cycle <= now
        ):
            event = events[self._next_idx]
            self._next_idx += 1
            self._apply(event, now)
        if self._flaky:
            self._flaky_tick(now)
        if self._awaiting:
            received = self.platform.packets_received
            still = []
            for record, packets_then in self._awaiting:
                if received > packets_then:
                    record.recovery_cycles = now - record.cycle
                else:
                    still.append((record, packets_then))
            self._awaiting = still
        return self._wake_cycle(now)

    def finalize(
        self,
        now: int,
        degraded: bool = False,
        reason: Optional[str] = None,
    ) -> FaultReport:
        """Close the last throughput window and return the report."""
        self._cut_window(now, "end")
        self.report.degraded = degraded
        self.report.degraded_reason = reason
        return self.report

    def _wake_cycle(self, now: int) -> int:
        """Next cycle this injector must run before."""
        if self._flaky or self._awaiting:
            return now + 1
        if self._next_idx < len(self._events):
            return self._events[self._next_idx].cycle
        return NEVER

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _cut_window(self, now: int, next_label: str) -> None:
        received = self.platform.packets_received
        if now > self._boundary_cycle:
            self.report.windows.append(
                FaultWindow(
                    label=self._boundary_label,
                    start=self._boundary_cycle,
                    end=now,
                    packets_received=received - self._boundary_packets,
                )
            )
        self._boundary_cycle = now
        self._boundary_packets = received
        self._boundary_label = next_label

    def _apply(self, event: FaultEvent, now: int) -> None:
        tracer = self.platform.network._tracer
        if tracer is not None:
            # Emitted before the abort events the application below
            # produces; the tracer's canonical intra-cycle order keeps
            # fault -> aborts -> dataflow regardless of call order.
            detail = (
                f"switch {event.switch}"
                if event.switch is not None
                else f"{event.a}->{event.b}"
            )
            tracer.fault(now, event.kind, detail)
        if event.kind == "link_down":
            self._apply_link_down(event, now)
        elif event.kind == "link_up":
            self._apply_link_up(event, now)
        elif event.kind == "flaky":
            self._apply_flaky(event, now)
        else:
            self._apply_switch_down(event, now)

    def _record(
        self, record: FaultEventRecord, now: int, watch_recovery: bool
    ) -> None:
        self._cut_window(now, f"after {record.kind}@{now}")
        self.report.events.append(record)
        self.report.dropped_flits += record.dropped_flits
        self.report.dropped_packets += record.dropped_packets
        if watch_recovery:
            self._awaiting.append(
                (record, self.platform.packets_received)
            )

    def _abort(self, pids, now: int, record: FaultEventRecord) -> None:
        if not pids:
            return
        network = self.platform.network
        dropped, per_link, affected = network.abort_packets(pids, now)
        record.dropped_flits += dropped
        record.dropped_packets += len(affected)
        drops = self.report.per_link_drops
        for name, n in per_link.items():
            drops[name] = drops.get(name, 0) + n

    def _take_link_down(self, a: int, b: int, now: int) -> set:
        """Mark every ``a -> b`` link dead; return the cut-set pids.

        Collects the packets that can no longer complete — flits on
        the dying wire plus the wormhole that holds the upstream
        channel open — zeroes the upstream credits, purges credits in
        flight toward the dead output, and disables the downstream
        input's credit scheduling so later pops there do not resupply
        a dead port.
        """
        network = self.platform.network
        pids = set()
        for link in network.switch_links[(a, b)]:
            for slot in network._flit_wheel:
                for wired, flit in slot:
                    if wired is link:
                        pids.add(flit.packet.pid)
            up, out = network.link_upstream[link]
            if out.lock_pid is not None:
                pids.add(out.lock_pid)
            link.down = True
            out.credits = 0
            for slot in network._credit_wheel:
                if slot:
                    slot[:] = [t for t in slot if t[0] is not out]
            down_sw, in_port, _buf = link.dst
            key = (down_sw.switch_id, in_port)
            self._saved_credit[key] = down_sw._input_credit[in_port]
            down_sw._input_credit[in_port] = None
        self._dead_pairs.add((a, b))
        return pids

    def _apply_link_down(self, event: FaultEvent, now: int) -> None:
        record = FaultEventRecord(
            cycle=now,
            kind="link_down",
            detail=f"{event.a}->{event.b}",
        )
        pids = self._take_link_down(event.a, event.b, now)
        self._abort(pids, now, record)
        if self.schedule.repair:
            self._repair(now, record)
        self._record(record, now, watch_recovery=True)

    def _apply_link_up(self, event: FaultEvent, now: int) -> None:
        network = self.platform.network
        record = FaultEventRecord(
            cycle=now,
            kind="link_up",
            detail=f"{event.a}->{event.b}",
        )
        for link in network.switch_links[(event.a, event.b)]:
            link.down = False
            up, out = network.link_upstream[link]
            down_sw, in_port, buf = link.dst
            key = (down_sw.switch_id, in_port)
            down_sw._input_credit[in_port] = self._saved_credit.pop(
                key
            )
            # Re-baseline: the wire is empty and no credit is in
            # flight for this port, so free slots are exactly the
            # downstream buffer's headroom.
            out.credits = buf.capacity - len(buf._fifo)
            if out.credits > 0 and out.credit_waiters:
                up._credit_wake_port(out, now)
        self._dead_pairs.discard((event.a, event.b))
        if self.schedule.repair:
            self._repair(now, record)
        self._record(record, now, watch_recovery=False)

    def _apply_flaky(self, event: FaultEvent, now: int) -> None:
        network = self.platform.network
        record = FaultEventRecord(
            cycle=now,
            kind="flaky",
            detail=(
                f"{event.a}->{event.b} until {event.until}"
                f" p={event.drop_p}"
            ),
        )
        links = list(network.switch_links[(event.a, event.b)])
        threshold = int(event.drop_p * 2**32)
        self._flaky.append((event, links, threshold, record))
        self._record(record, now, watch_recovery=True)

    def _flaky_tick(self, now: int) -> None:
        network = self.platform.network
        slot = network._flit_wheel[now % network._wheel_size]
        still = []
        for entry in self._flaky:
            event, links, threshold, record = entry
            if now >= event.until:
                self._cut_window(
                    now, f"after flaky {event.a}->{event.b}@{now}"
                )
                continue
            if threshold and slot:
                pids = set()
                for link, flit in slot:
                    if link in links and not link.down:
                        draw = derive_stream_seed(
                            event.seed, flit.packet.pid, flit.seq
                        )
                        if draw < threshold:
                            pids.add(flit.packet.pid)
                self._abort(pids, now, record)
                if pids:
                    self.report.dropped_flits = sum(
                        e.dropped_flits for e in self.report.events
                    )
                    self.report.dropped_packets = sum(
                        e.dropped_packets for e in self.report.events
                    )
            still.append(entry)
        self._flaky = still

    def _apply_switch_down(self, event: FaultEvent, now: int) -> None:
        platform = self.platform
        network = platform.network
        topo = platform.topology
        s = event.switch
        sw = network.switches[s]
        dead_nodes = set(topo.nodes_on_switch(s))
        record = FaultEventRecord(
            cycle=now,
            kind="switch_down",
            detail=(
                f"switch {s}"
                + (f" (nodes {sorted(dead_nodes)})" if dead_nodes else "")
            ),
        )
        # Generators on the dead switch stop first (settling their
        # backpressure accounting), so the orphan check below only
        # sees flows that still want to send.
        for gen in platform.generators:
            if gen.node in dead_nodes and gen.enabled:
                gen.disable()
        # Take down every inter-switch link touching s, collecting the
        # packets cut on each.
        pids = set()
        for (a, b) in list(network.switch_links):
            if (
                (a == s or b == s)
                and (a, b) not in self._dead_pairs
            ):
                pids |= self._take_link_down(a, b, now)
        # Injection and ejection links of the dead switch's nodes.
        for node in dead_nodes:
            ni = network.nis[node]
            # Everything still queued behind the dead injection link
            # can never leave, whatever its destination.
            for flit in ni._flits:
                pids.add(flit.packet.pid)
            link = ni._link
            if link is not None and not link.down:
                link.down = True
                for slot in network._flit_wheel:
                    for wired, flit in slot:
                        if wired is link:
                            pids.add(flit.packet.pid)
                ni._credits = 0
                for slot in network._credit_wheel:
                    if slot:
                        slot[:] = [
                            t
                            for t in slot
                            if not (t[0] is None and t[1] is ni)
                        ]
        for out in sw._outputs:
            if out.lock_pid is not None:
                pids.add(out.lock_pid)
            link = out.link
            if link is not None and not link.down:
                # Ejection link (inter-switch ones are down already).
                link.down = True
                for slot in network._flit_wheel:
                    for wired, flit in slot:
                        if wired is link:
                            pids.add(flit.packet.pid)
                out.credits = 0
        # Everything buffered inside the dead switch dies with it.
        for buf in sw.inputs:
            for flit in buf._fifo:
                pids.add(flit.packet.pid)
        # Traffic destined to the dead nodes can never arrive: abort
        # it wherever it is (queues, buffers, wires, reassembly).
        if dead_nodes:
            for ni in network.nis:
                for flit in ni._flits:
                    if flit.dst in dead_nodes:
                        pids.add(flit.packet.pid)
            for other in network.switches:
                for buf in other.inputs:
                    for flit in buf._fifo:
                        if flit.dst in dead_nodes:
                            pids.add(flit.packet.pid)
            for slot in network._flit_wheel:
                for _link, flit in slot:
                    if flit.dst in dead_nodes:
                        pids.add(flit.packet.pid)
            for node in dead_nodes:
                pids.update(network.rx[node]._partial.keys())
        self._abort(pids, now, record)
        if self.schedule.repair:
            self._repair(now, record)
        self._record(record, now, watch_recovery=True)

    # ------------------------------------------------------------------
    # Online repair
    # ------------------------------------------------------------------
    def _destinations(self) -> set:
        from repro.traffic.base import DestinationChooser

        destinations = set()
        for spec in self.platform.config.tgs:
            dst = spec.params.get("dst")
            if dst is None:
                continue
            if isinstance(dst, DestinationChooser):
                destinations.update(dst.destinations())
            elif isinstance(dst, int):
                destinations.add(dst)
            else:
                destinations.update(dst)
        return destinations

    def _build_tables(self, avoid):
        """Rebuild routing in the platform's configured family."""
        topo = self.platform.topology
        spec = self.platform.config.routing
        if isinstance(spec, str):
            if spec == "updown":
                return build_updown_tables(topo, avoid_links=avoid)
            if spec.startswith("multipath"):
                max_paths = 2
                if ":" in spec:
                    max_paths = int(spec.split(":", 1)[1])
                return build_multipath_tables(
                    topo, max_paths=max_paths, avoid_links=avoid
                )
        # Paper table variants, "shortest", and explicit routing
        # objects all repair to shortest-path tables on the surviving
        # fabric (the paper's own repair story).
        return build_shortest_path_tables(topo, avoid_links=avoid)

    def _stranded_pids(self, routing) -> set:
        """Packets whose head can no longer reach its destination.

        Only head flits consult the tables — committed wormhole bodies
        follow their channel locks — and table builders are
        path-complete (an entry at a switch implies entries along the
        whole path), so one lookup per head position suffices.  Heads
        already ejected (partial reassembly) stream the rest of their
        packet along held locks and need no route.
        """
        network = self.platform.network
        topo = self.platform.topology
        stranded = set()
        for ni in network.nis:
            if not ni._flits:
                continue
            switch = topo.switch_of_node(ni.node)
            for flit in ni._flits:
                if flit.is_head and not routing.ports_for(
                    switch, flit.dst
                ):
                    stranded.add(flit.packet.pid)
        for sw in network.switches:
            sid = sw.switch_id
            for buf in sw.inputs:
                for flit in buf._fifo:
                    if flit.is_head and not routing.ports_for(
                        sid, flit.dst
                    ):
                        stranded.add(flit.packet.pid)
        for slot in network._flit_wheel:
            for link, flit in slot:
                if not flit.is_head:
                    continue
                dst = link.dst
                if dst is not None and not routing.ports_for(
                    dst[0].switch_id, flit.dst
                ):
                    stranded.add(flit.packet.pid)
        return stranded

    def _repair(self, now: int, record: FaultEventRecord) -> None:
        """Rebuild, vet, and hot-swap the routing tables.

        Raises :class:`UnroutableError` when the surviving fabric
        cannot carry an active flow (a partitioning fault).
        """
        t0 = perf_counter()  # repro: allow[wall-clock] repair_wall_seconds is a reported repair-cost diagnostic
        platform = self.platform
        network = platform.network
        topo = platform.topology
        avoid = frozenset(self._dead_pairs)
        routing = self._build_tables(avoid)
        destinations = self._destinations()
        if destinations and not is_deadlock_free(
            topo, routing, sorted(destinations)
        ):
            # The repaired shortest/multipath tables can close a
            # channel cycle the originals did not; fall back to
            # up*/down*, deadlock-free by construction.
            routing = build_updown_tables(topo, avoid_links=avoid)
        # Partition check: every still-active flow must have a route.
        from repro.traffic.base import DestinationChooser

        node_dsts: Dict[int, tuple] = {}
        for spec in platform.config.tgs:
            dst = spec.params.get("dst")
            if dst is None:
                continue
            if isinstance(dst, DestinationChooser):
                node_dsts[spec.node] = tuple(dst.destinations())
            elif isinstance(dst, int):
                node_dsts[spec.node] = (dst,)
            else:
                node_dsts[spec.node] = tuple(dst)
        orphans = []
        for gen in platform.generators:
            if not gen.enabled or gen.done:
                continue
            switch = topo.switch_of_node(gen.node)
            for dst in node_dsts.get(gen.node, ()):
                if not routing.ports_for(switch, dst):
                    orphans.append((gen.node, dst))
        if orphans:
            flows = ", ".join(f"{a}->{b}" for a, b in orphans)
            raise UnroutableError(
                f"fault at cycle {now} partitions the fabric: no"
                f" surviving route for active flow(s) {flows}",
                flows=orphans,
            )
        # In-flight packets the new tables cannot deliver are aborted
        # (their flows are done or disabled, or they were cut from a
        # salvageable position).
        self._abort(self._stranded_pids(routing), now, record)
        # Hot-swap: recompile the dense tables and drop every
        # *uncommitted* cached route decision (committed = the input
        # holds the output's wormhole lock; its body flits must keep
        # following the old path).  Parked inputs among them re-arm
        # through the normal wake path and re-route next cycle.
        network.routing = routing
        n_nodes = topo.n_nodes
        for sw in network.switches:
            sw.routing = routing
            sw._compile_routes(n_nodes)
            route_outs = sw._input_out
            parked = sw._in_parked
            for i in range(len(route_outs)):
                out = route_outs[i]
                if out is not None and out.lock != i:
                    sw._input_route[i] = None
                    route_outs[i] = None
                    if parked[i]:
                        sw._wake_input(i, now - 1)
        record.repaired = True
        record.repair_wall_seconds += perf_counter() - t0  # repro: allow[wall-clock] repair_wall_seconds is a reported repair-cost diagnostic
