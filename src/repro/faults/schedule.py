"""Declarative fault schedules.

A :class:`FaultSchedule` is the fault-side analogue of
:class:`~repro.experiments.spec.ScenarioSpec`: a frozen, validated,
canonically serialisable list of timed fault events.  It carries no
behaviour — :class:`~repro.faults.injector.FaultInjector` applies the
events to a live platform — so schedules can live inside scenario
specs, travel to sweep worker processes as plain dicts, and contribute
to content-addressed cache keys.

Event kinds
-----------
``link_down(cycle, a, b)``
    The directed inter-switch link ``a -> b`` dies at ``cycle``:
    in-flight flits on it are dropped, packets that lose flits are
    aborted everywhere, and (with ``repair=True``) routing is rebuilt
    online around the dead link.
``link_up(cycle, a, b)``
    A previously-downed link comes back; credits re-baseline and (with
    repair) routing is rebuilt to use it again.
``flaky(cycle, a, b, until, drop_p, seed)``
    During ``[cycle, until)`` every flit arriving over ``a -> b`` is
    dropped with probability ``drop_p``; drops are content-addressed
    (packet id, flit sequence) through
    :func:`~repro.traffic.rng.derive_stream_seed`, so they are
    reproducible and identical across kernels and worker processes.
``switch_down(cycle, switch)``
    Every link touching ``switch`` dies at once; generators hosted on
    it are disabled and traffic destined to its nodes is aborted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.core.errors import ConfigError
from repro.util import canonical_json_bytes

#: Bump when the canonical dict layout changes incompatibly.
FAULT_SCHEMA = 1

_KINDS = ("link_down", "link_up", "flaky", "switch_down")

#: Fields an event of each kind must set; everything else must be None.
_REQUIRED = {
    "link_down": ("a", "b"),
    "link_up": ("a", "b"),
    "flaky": ("a", "b", "until", "drop_p", "seed"),
    "switch_down": ("switch",),
}
_OPTIONAL_FIELDS = ("a", "b", "switch", "until", "drop_p", "seed")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault event (see the module docstring for kinds)."""

    kind: str
    cycle: int
    a: Optional[int] = None
    b: Optional[int] = None
    switch: Optional[int] = None
    until: Optional[int] = None
    drop_p: Optional[float] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r};"
                f" expected one of {_KINDS}"
            )
        if not isinstance(self.cycle, int) or self.cycle < 0:
            raise ConfigError(
                f"fault cycle must be a non-negative int,"
                f" got {self.cycle!r}"
            )
        required = _REQUIRED[self.kind]
        for name in _OPTIONAL_FIELDS:
            value = getattr(self, name)
            if name in required:
                if value is None:
                    raise ConfigError(
                        f"{self.kind} event needs {name!r}"
                    )
            elif value is not None:
                raise ConfigError(
                    f"{self.kind} event does not take {name!r}"
                )
        if self.a is not None:
            if self.a < 0 or self.b < 0 or self.a == self.b:
                raise ConfigError(
                    f"fault link endpoints must be distinct"
                    f" non-negative switch ids, got"
                    f" {self.a} -> {self.b}"
                )
        if self.switch is not None and self.switch < 0:
            raise ConfigError(
                f"fault switch id must be non-negative,"
                f" got {self.switch}"
            )
        if self.until is not None and self.until <= self.cycle:
            raise ConfigError(
                f"flaky window must end after it starts:"
                f" until={self.until} <= cycle={self.cycle}"
            )
        if self.drop_p is not None and not 0.0 <= self.drop_p <= 1.0:
            raise ConfigError(
                f"drop probability must be in [0, 1],"
                f" got {self.drop_p}"
            )
        if self.seed is not None and (
            not isinstance(self.seed, int) or self.seed < 0
        ):
            raise ConfigError(
                f"fault seed must be a non-negative int,"
                f" got {self.seed!r}"
            )

    def sort_key(self) -> tuple:
        """Canonical event order: time first, then content."""
        return (
            self.cycle,
            self.kind,
            -1 if self.a is None else self.a,
            -1 if self.b is None else self.b,
            -1 if self.switch is None else self.switch,
            -1 if self.until is None else self.until,
            -1.0 if self.drop_p is None else self.drop_p,
            -1 if self.seed is None else self.seed,
        )

    def to_dict(self) -> dict:
        d = {"kind": self.kind, "cycle": self.cycle}
        for name in _OPTIONAL_FIELDS:
            value = getattr(self, name)
            if value is not None:
                d[name] = value
        return d

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultEvent":
        known = {"kind", "cycle", *_OPTIONAL_FIELDS}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault event fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


def link_down(cycle: int, a: int, b: int) -> FaultEvent:
    return FaultEvent("link_down", cycle, a=a, b=b)


def link_up(cycle: int, a: int, b: int) -> FaultEvent:
    return FaultEvent("link_up", cycle, a=a, b=b)


def flaky(
    cycle: int,
    a: int,
    b: int,
    until: int,
    drop_p: float,
    seed: int = 1,
) -> FaultEvent:
    return FaultEvent(
        "flaky", cycle, a=a, b=b, until=until, drop_p=drop_p, seed=seed
    )


def switch_down(cycle: int, switch: int) -> FaultEvent:
    return FaultEvent("switch_down", cycle, switch=switch)


@dataclass(frozen=True)
class FaultSchedule:
    """A validated, canonically ordered set of fault events.

    ``repair=True`` (the default) rebuilds routing online after every
    topology-changing event; ``repair=False`` leaves the tables alone
    so the run measures raw degradation — typically ending in the
    engine's :class:`~repro.core.engine.DegradedResult` escalation.
    """

    events: Tuple[FaultEvent, ...] = ()
    repair: bool = True

    def __post_init__(self) -> None:
        events = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
            for e in self.events
        )
        events = tuple(sorted(events, key=FaultEvent.sort_key))
        object.__setattr__(self, "events", events)
        if not isinstance(self.repair, bool):
            raise ConfigError(
                f"repair must be a bool, got {self.repair!r}"
            )
        # Per directed link, down and up must alternate starting down;
        # a switch may die at most once and its links must not be
        # faulted afterwards.
        link_state: dict = {}
        down_switches: dict = {}
        for e in events:
            if e.a is not None:
                for s in (e.a, e.b):
                    if s in down_switches:
                        raise ConfigError(
                            f"{e.kind} at cycle {e.cycle} touches"
                            f" switch {s}, already dead since cycle"
                            f" {down_switches[s]}"
                        )
            if e.kind == "link_down":
                if link_state.get((e.a, e.b)):
                    raise ConfigError(
                        f"link_down {e.a}->{e.b} at cycle {e.cycle}:"
                        f" the link is already down"
                    )
                link_state[(e.a, e.b)] = True
            elif e.kind == "link_up":
                if not link_state.get((e.a, e.b)):
                    raise ConfigError(
                        f"link_up {e.a}->{e.b} at cycle {e.cycle}"
                        f" without a preceding link_down"
                    )
                link_state[(e.a, e.b)] = False
            elif e.kind == "switch_down":
                if e.switch in down_switches:
                    raise ConfigError(
                        f"switch_down {e.switch} at cycle {e.cycle}:"
                        f" the switch is already down"
                    )
                down_switches[e.switch] = e.cycle

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> dict:
        return {
            "repair": self.repair,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSchedule":
        unknown = set(data) - {"repair", "events"}
        if unknown:
            raise ConfigError(
                f"unknown fault schedule fields: {sorted(unknown)}"
            )
        return cls(
            events=tuple(
                FaultEvent.from_dict(e) if isinstance(e, Mapping) else e
                for e in data.get("events", ())
            ),
            repair=data.get("repair", True),
        )

    @classmethod
    def of(
        cls, *events: FaultEvent, repair: bool = True
    ) -> "FaultSchedule":
        """Convenience constructor from loose events."""
        return cls(events=tuple(events), repair=repair)

    @property
    def key(self) -> str:
        """Content-addressed identity (16 hex chars), like a spec key."""
        payload = canonical_json_bytes(
            {"schema": FAULT_SCHEMA, "schedule": self.to_dict()}
        )
        return hashlib.sha256(payload).hexdigest()[:16]

    def first_cycle(self) -> Optional[int]:
        return self.events[0].cycle if self.events else None
