"""Deterministic fault injection and online repair.

See :mod:`repro.faults.schedule` for the declarative event model,
:mod:`repro.faults.injector` for live application and online routing
repair, and :mod:`repro.faults.report` for the degradation record a
faulted run returns.
"""

from repro.faults.injector import FaultInjector
from repro.faults.report import (
    FaultEventRecord,
    FaultReport,
    FaultWindow,
)
from repro.faults.schedule import (
    FAULT_SCHEMA,
    FaultEvent,
    FaultSchedule,
    flaky,
    link_down,
    link_up,
    switch_down,
)

__all__ = [
    "FAULT_SCHEMA",
    "FaultEvent",
    "FaultEventRecord",
    "FaultInjector",
    "FaultReport",
    "FaultSchedule",
    "FaultWindow",
    "flaky",
    "link_down",
    "link_up",
    "switch_down",
]
