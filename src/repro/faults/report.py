"""Degradation accounting for faulted runs.

A :class:`FaultReport` is the honest record the engine attaches to
:class:`~repro.core.engine.EngineResult` when a run carried a fault
schedule: what was dropped (per link and per packet), which reroutes
happened and what they cost, and how throughput moved across the
windows a fault cuts the run into.  All counters except the wall-clock
repair latencies are deterministic, so they can feed scenario metrics
and sweep records without breaking bit-identical reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class FaultEventRecord:
    """One applied fault event and what it cost."""

    cycle: int
    kind: str
    detail: str
    dropped_flits: int = 0
    dropped_packets: int = 0
    repaired: bool = False
    #: Host-side wall time spent rebuilding/vetting/recompiling the
    #: routing tables (the "repair latency" of the software-only
    #: reconfiguration story); not deterministic, excluded from
    #: metrics.
    repair_wall_seconds: float = 0.0
    #: Emulated cycles from the event until the first packet delivery
    #: after it — the fabric-level recovery latency.  None if nothing
    #: was delivered after the event.
    recovery_cycles: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "detail": self.detail,
            "dropped_flits": self.dropped_flits,
            "dropped_packets": self.dropped_packets,
            "repaired": self.repaired,
            "repair_wall_seconds": self.repair_wall_seconds,
            "recovery_cycles": self.recovery_cycles,
        }


@dataclass
class FaultWindow:
    """Delivered traffic between two consecutive fault boundaries."""

    label: str
    start: int
    end: int
    packets_received: int

    @property
    def cycles(self) -> int:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Packets delivered per cycle inside the window."""
        if self.end <= self.start:
            return 0.0
        return self.packets_received / (self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "packets_received": self.packets_received,
            "throughput": self.throughput,
        }


@dataclass
class FaultReport:
    """Aggregated degradation record of one faulted run."""

    dropped_flits: int = 0
    dropped_packets: int = 0
    per_link_drops: Dict[str, int] = field(default_factory=dict)
    events: List[FaultEventRecord] = field(default_factory=list)
    windows: List[FaultWindow] = field(default_factory=list)
    degraded: bool = False
    degraded_reason: Optional[str] = None

    @property
    def reroutes(self) -> List[FaultEventRecord]:
        """The events that triggered an online routing repair."""
        return [e for e in self.events if e.repaired]

    def to_dict(self) -> dict:
        return {
            "dropped_flits": self.dropped_flits,
            "dropped_packets": self.dropped_packets,
            "per_link_drops": dict(self.per_link_drops),
            "events": [e.to_dict() for e in self.events],
            "windows": [w.to_dict() for w in self.windows],
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
        }
