"""Traffic receptors.

Slide 11 of the paper: "Stochastic receptors: Histograms, which show an
image of the received traffic. Total running time.  Trace driven
receptors: Latency analyzer. Congestion counter."  A receptor is the
device attached to the receive side of a network interface; it consumes
reassembled packets and maintains the statistics the monitor reads out.
"""

from repro.receptors.base import TrafficReceptor
from repro.receptors.histogram import Histogram
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor

__all__ = [
    "Histogram",
    "StochasticReceptor",
    "TraceDrivenReceptor",
    "TrafficReceptor",
]
