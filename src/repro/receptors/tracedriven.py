"""The trace-driven receptor.

Slide 11: "Trace driven receptors: Latency analyzer. Congestion
counter."  The device combines the two analyzers of ``repro.stats``
behind the common receptor interface; the latency and congestion
figures of the paper (Slides 21-22) are read out of these objects.
"""

from __future__ import annotations

from typing import List

from repro.noc.flit import Flit, Packet
from repro.receptors.base import TrafficReceptor
from repro.stats.congestion import CongestionCounter
from repro.stats.latency import LatencyAnalyzer


class TraceDrivenReceptor(TrafficReceptor):
    """Receptor with a latency analyzer and a congestion counter.

    Parameters
    ----------
    node:
        Node index the receptor sits on.
    latency_bins, latency_bin_width:
        Geometry of the latency histogram (FPGA cost model input).
    """

    def __init__(
        self,
        node: int,
        latency_bins: int = 64,
        latency_bin_width: int = 8,
        name: str = "",
    ) -> None:
        super().__init__(node, name)
        self.latency = LatencyAnalyzer(latency_bins, latency_bin_width)
        self.congestion = CongestionCounter()

    def _record(self, packet: Packet, now: int, flits: List[Flit]) -> None:
        self.latency.record(packet, now)
        self.congestion.record(packet, flits)

    # ------------------------------------------------------------------
    # Monitor-facing report
    # ------------------------------------------------------------------
    def report(self) -> str:
        lat = self.latency
        con = self.congestion
        parts = [
            f"trace-driven receptor {self.name} (node {self.node})",
            f"  packets received    : {self.packets_received}",
            f"  running time        : {self.running_time} cycles",
            f"  latency min/avg/max : {lat.min_latency}/"
            f"{lat.mean_latency:.1f}/{lat.max_latency} cycles",
            f"  latency p95         : {lat.quantile(0.95)} cycles",
            f"  stall cycles total  : {con.total_stall_cycles}",
            f"  stall per packet    : {con.mean_stall_per_packet:.2f}",
            f"  congested packets   : {con.congested_fraction:.1%}",
        ]
        return "\n".join(parts)

    def reset(self) -> None:
        super().reset()
        self.latency.reset()
        self.congestion.reset()
