"""The stochastic receptor.

Slide 11: "Stochastic receptors: Histograms, which show an image of the
received traffic. Total running time."  The device keeps three counter
histograms — packet length, inter-arrival gap and source node — plus
the running-time register inherited from the base class.  Together they
are the "image of the received traffic" the monitor renders.
"""

from __future__ import annotations

from typing import List, Optional

from repro.noc.flit import Flit, Packet
from repro.receptors.base import TrafficReceptor
from repro.receptors.histogram import Histogram


class StochasticReceptor(TrafficReceptor):
    """Histogram-based receptor for stochastic traffic experiments.

    Parameters
    ----------
    node:
        Node index the receptor sits on.
    length_bins, length_bin_width:
        Geometry of the packet-length histogram.
    gap_bins, gap_bin_width:
        Geometry of the inter-arrival-gap histogram (gap between
        consecutive packet completions at this receptor).
    n_sources:
        Number of nodes in the platform, sizing the per-source packet
        counter bank (one counter per possible source).
    """

    def __init__(
        self,
        node: int,
        length_bins: int = 16,
        length_bin_width: int = 2,
        gap_bins: int = 32,
        gap_bin_width: int = 4,
        n_sources: int = 16,
        name: str = "",
    ) -> None:
        super().__init__(node, name)
        self.length_histogram = Histogram(
            length_bins, length_bin_width, origin=1
        )
        self.gap_histogram = Histogram(gap_bins, gap_bin_width, origin=0)
        self.source_histogram = Histogram(n_sources, 1, origin=0)
        self._previous_arrival: Optional[int] = None

    def _record(self, packet: Packet, now: int, flits: List[Flit]) -> None:
        self.length_histogram.add(packet.length)
        self.source_histogram.add(packet.src)
        if self._previous_arrival is not None:
            self.gap_histogram.add(now - self._previous_arrival)
        self._previous_arrival = now

    # ------------------------------------------------------------------
    # Monitor-facing report
    # ------------------------------------------------------------------
    def report(self) -> str:
        """The textual image of the received traffic."""
        parts = [
            f"stochastic receptor {self.name} (node {self.node})",
            f"  packets received : {self.packets_received}",
            f"  flits received   : {self.flits_received}",
            f"  running time     : {self.running_time} cycles",
            f"  throughput       : {self.throughput():.4f} flits/cycle",
            self.length_histogram.render(title="  packet length:"),
            self.gap_histogram.render(title="  inter-arrival gap:"),
            self.source_histogram.render(title="  source node:"),
        ]
        return "\n".join(parts)

    def reset(self) -> None:
        super().reset()
        self.length_histogram.reset()
        self.gap_histogram.reset()
        self.source_histogram.reset()
        self._previous_arrival = None
