"""Receptor base class.

A receptor hooks the receive side of a node's network interface: the
reassembly buffer calls :meth:`TrafficReceptor.on_packet` for every
completed packet.  Subclasses add the statistics machinery of the two
receptor families the paper describes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.noc.flit import Flit, Packet
from repro.noc.ni import ReassemblyBuffer


class TrafficReceptor:
    """Common packet accounting of all receptor devices.

    Tracks the counters every receptor shares: packets/flits received,
    the first and last reception cycle (whose difference is the "total
    running time" the stochastic receptor reports), and exposes the
    ``attach`` plumbing to a reassembly buffer.
    """

    def __init__(self, node: int, name: str = "") -> None:
        self.node = node
        self.name = name or f"tr{node}"
        self.packets_received = 0
        self.flits_received = 0
        self.first_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None
        self.enabled = True
        # Platform hook: packet-count delta (positive on reception,
        # negative on reset) keeping aggregate progress counters O(1).
        self.on_count: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, rx: ReassemblyBuffer) -> None:
        """Register this receptor as the packet sink of ``rx``."""
        if rx.on_packet is not None:
            raise RuntimeError(
                f"reassembly buffer of node {rx.node} already has a"
                f" receptor attached"
            )
        rx.on_packet = self.on_packet

    # ------------------------------------------------------------------
    # Packet sink
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, now: int, flits: List[Flit]) -> None:
        if not self.enabled:
            return
        self.packets_received += 1
        self.flits_received += packet.length
        if self.on_count is not None:
            self.on_count(1)
        if self.first_cycle is None:
            self.first_cycle = now
        self.last_cycle = now
        self._record(packet, now, flits)

    def _record(self, packet: Packet, now: int, flits: List[Flit]) -> None:
        """Subclass hook for per-packet statistics."""

    # ------------------------------------------------------------------
    # Shared statistics
    # ------------------------------------------------------------------
    @property
    def running_time(self) -> int:
        """Cycles between the first and last received packet.

        This is the "total running time" register of the stochastic
        receptor (Slide 11); zero until two packets have arrived.
        """
        if self.first_cycle is None or self.last_cycle is None:
            return 0
        return self.last_cycle - self.first_cycle

    def throughput(self) -> float:
        """Accepted flits per cycle over the receptor's active window."""
        if self.running_time == 0:
            return 0.0
        return self.flits_received / self.running_time

    def reset(self) -> None:
        if self.on_count is not None and self.packets_received:
            self.on_count(-self.packets_received)
        self.packets_received = 0
        self.flits_received = 0
        self.first_cycle = None
        self.last_cycle = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(node={self.node},"
            f" packets={self.packets_received})"
        )
