"""Fixed-bin histograms, hardware style.

The stochastic receptors of the platform keep histograms in small
banks of counter registers — one counter per bin, fixed bin width, one
overflow bin — because that is what fits in a few hundred FPGA slices
(Table 1 charges the TR for exactly these counters).  This class
reproduces that structure rather than using a dynamic container, so the
FPGA cost model can price a receptor directly from its histogram
geometry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Histogram:
    """A fixed-geometry counting histogram.

    Values land in ``n_bins`` bins of ``bin_width`` starting at
    ``origin``; values beyond the last bin are accumulated in a single
    overflow counter (as a saturating hardware histogram would), values
    below ``origin`` in an underflow counter.
    """

    def __init__(
        self, n_bins: int, bin_width: int = 1, origin: int = 0
    ) -> None:
        if n_bins < 1:
            raise ValueError(f"histogram needs >= 1 bin, got {n_bins}")
        if bin_width < 1:
            raise ValueError(f"bin width must be >= 1, got {bin_width}")
        self.n_bins = n_bins
        self.bin_width = bin_width
        self.origin = origin
        self.counts: List[int] = [0] * n_bins
        self.overflow = 0
        self.underflow = 0
        self.total = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.total += count
        self._sum += value * count
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        offset = value - self.origin
        if offset < 0:
            self.underflow += count
            return
        index = offset // self.bin_width
        if index >= self.n_bins:
            self.overflow += count
        else:
            self.counts[index] += count

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram of identical geometry."""
        if (
            other.n_bins != self.n_bins
            or other.bin_width != self.bin_width
            or other.origin != self.origin
        ):
            raise ValueError(
                "cannot merge histograms with different geometry"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.overflow += other.overflow
        self.underflow += other.underflow
        self.total += other.total
        self._sum += other._sum
        for bound in (other._min, other._max):
            if bound is None:
                continue
            if self._min is None or bound < self._min:
                self._min = bound
            if self._max is None or bound > self._max:
                self._max = bound

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of all recorded values (kept in a sum register)."""
        return self._sum / self.total if self.total else 0.0

    @property
    def min(self) -> Optional[int]:
        return self._min

    @property
    def max(self) -> Optional[int]:
        return self._max

    def bin_range(self, index: int) -> Tuple[int, int]:
        """Inclusive-exclusive value range of bin ``index``."""
        if not 0 <= index < self.n_bins:
            raise IndexError(f"bin {index} out of range [0, {self.n_bins})")
        lo = self.origin + index * self.bin_width
        return (lo, lo + self.bin_width)

    def quantile(self, q: float) -> int:
        """Approximate quantile from bin boundaries.

        Returns the upper edge of the bin where the cumulative count
        crosses ``q``; overflow maps to the recorded maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return self.origin
        threshold = q * self.total
        cumulative = self.underflow
        if cumulative >= threshold and self.underflow:
            return self.origin
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= threshold:
                return self.bin_range(i)[1]
        return self._max if self._max is not None else self.origin

    def nonzero_bins(self) -> List[Tuple[Tuple[int, int], int]]:
        """(range, count) for every populated bin, in value order."""
        return [
            (self.bin_range(i), c)
            for i, c in enumerate(self.counts)
            if c
        ]

    # ------------------------------------------------------------------
    # Rendering (what the monitor shows on the host PC)
    # ------------------------------------------------------------------
    def render(self, width: int = 40, title: str = "") -> str:
        """ASCII rendering, one row per populated bin."""
        lines: List[str] = []
        if title:
            lines.append(title)
        peak = max(self.counts + [self.overflow, self.underflow, 1])
        if self.underflow:
            bar = "#" * max(1, round(self.underflow / peak * width))
            lines.append(f"  <{self.origin:>6} | {bar} {self.underflow}")
        for (lo, hi), count in self.nonzero_bins():
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"{lo:>4}-{hi - 1:<4} | {bar} {count}")
        if self.overflow:
            hi = self.origin + self.n_bins * self.bin_width
            bar = "#" * max(1, round(self.overflow / peak * width))
            lines.append(f" >={hi:>6} | {bar} {self.overflow}")
        if self.total == 0:
            lines.append("(empty)")
        return "\n".join(lines)

    def reset(self) -> None:
        self.counts = [0] * self.n_bins
        self.overflow = 0
        self.underflow = 0
        self.total = 0
        self._sum = 0
        self._min = None
        self._max = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram(bins={self.n_bins}, width={self.bin_width},"
            f" total={self.total})"
        )
