"""A miniature event-driven HDL simulation kernel.

This is the substrate of the RTL baseline (DESIGN.md §2): signals carry
values and fire events on change; processes are sensitive to signals
and re-evaluate when any of them changes; updates within one time step
settle through *delta cycles* exactly as in a VHDL/Verilog simulator.
A dedicated clock signal advances simulated time.

The kernel is deliberately faithful to how ModelSim-class simulators
work — per-signal event queues, sensitivity-driven re-evaluation,
non-blocking assignment semantics — because the speed comparison of
the paper hinges on that per-event cost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Set

MAX_DELTA_CYCLES = 1000


class SimulationError(RuntimeError):
    """Kernel-level failure (non-settling logic, bad wiring)."""


class Signal:
    """A value holder with change events and non-blocking updates.

    Reads return the *current* value; writes via :meth:`assign` take
    effect at the next delta cycle (non-blocking assignment), so all
    processes within one delta see a consistent snapshot.
    """

    __slots__ = ("name", "_value", "_next", "_listeners", "events")

    def __init__(self, name: str, value=0) -> None:
        self.name = name
        self._value = value
        self._next = None  # pending (value,) or None
        self._listeners: List["Process"] = []
        self.events = 0  # number of value changes (activity metric)

    @property
    def value(self):
        return self._value

    def assign(self, value) -> bool:
        """Schedule a new value; return True if it differs (will fire)."""
        if value == self._value and self._next is None:
            return False
        self._next = (value,)
        return True

    def _commit(self) -> bool:
        """Apply the pending value; return True if the value changed."""
        if self._next is None:
            return False
        (value,) = self._next
        self._next = None
        if value == self._value:
            return False
        self._value = value
        self.events += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}={self._value!r})"


class Process:
    """A simulation process with a static sensitivity list."""

    __slots__ = ("name", "callback", "runs")

    def __init__(self, name: str, callback: Callable[[], None]) -> None:
        self.name = name
        self.callback = callback
        self.runs = 0

    def run(self) -> None:
        self.runs += 1
        self.callback()


class EventSimulator:
    """Delta-cycle scheduler over signals and processes."""

    def __init__(self) -> None:
        self.signals: List[Signal] = []
        self.processes: List[Process] = []
        self.time = 0  # in clock cycles
        self.total_events = 0
        self.total_process_runs = 0
        self._pending: List[Signal] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def signal(self, name: str, value=0) -> Signal:
        sig = Signal(name, value)
        self.signals.append(sig)
        return sig

    def process(
        self,
        name: str,
        callback: Callable[[], None],
        sensitive_to: List[Signal],
    ) -> Process:
        proc = Process(name, callback)
        self.processes.append(proc)
        for sig in sensitive_to:
            sig._listeners.append(proc)
        return proc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def touch(self, signal: Signal, value) -> None:
        """Drive a signal (testbench stimulus or process assignment).

        Processes must route their assignments through this method (or
        :meth:`post`, its alias) so the kernel schedules the resulting
        delta cycle.
        """
        if signal.assign(value):
            self._pending.append(signal)

    #: Alias used by process bodies for readability.
    post = touch

    def settle(self) -> int:
        """Run delta cycles until no more events; return deltas used."""
        deltas = 0
        while self._pending:
            deltas += 1
            if deltas > MAX_DELTA_CYCLES:
                raise SimulationError(
                    f"logic failed to settle after {MAX_DELTA_CYCLES}"
                    f" delta cycles at time {self.time} (combinational"
                    f" loop?)"
                )
            changed, self._pending = self._pending, []
            woken: List[Process] = []
            seen: Set[int] = set()
            for sig in changed:
                if sig._commit():
                    self.total_events += 1
                    for proc in sig._listeners:
                        if id(proc) not in seen:
                            seen.add(id(proc))
                            woken.append(proc)
            for proc in woken:
                proc.run()
                self.total_process_runs += 1
        return deltas

    def drive(self, assignments: Dict[Signal, object]) -> None:
        """Testbench convenience: drive several signals, then settle."""
        for sig, value in assignments.items():
            self.touch(sig, value)
        self.settle()

    def tick(self, clock: Signal) -> None:
        """One full clock cycle: rising edge, settle, falling edge."""
        self.touch(clock, 1)
        self.settle()
        self.touch(clock, 0)
        self.settle()
        self.time += 1

    def run_cycles(self, clock: Signal, cycles: int) -> None:
        for _ in range(cycles):
            self.tick(clock)
