"""Baseline simulators for the speed comparison (Slide 18).

The paper compares its FPGA emulation against two software simulators
of the same NoC: a cycle-accurate SystemC model (MPARM, 20 Kcycles/s)
and an RTL Verilog simulation (ModelSim, 3.2 Kcycles/s).  We rebuild
both *kinds* of simulator in Python:

* ``repro.baselines.eventsim`` — a generic event-driven simulation
  kernel with signals, processes and delta cycles (a miniature VHDL/
  Verilog simulator kernel).
* ``repro.baselines.rtl`` — the platform switch re-implemented at RTL
  granularity on that kernel (registers, combinational processes,
  per-signal events), wired into the paper's 6-switch platform.
* ``repro.baselines.tlm`` — a SystemC-like cycle-accurate engine
  (clocked processes, evaluate/update channels) running the same
  switch semantics.
* ``repro.baselines.speed`` — the harness that measures the emulated
  cycles per wall-clock second of every engine and renders the paper's
  speed table.
"""

from repro.baselines.eventsim import EventSimulator, Process, Signal
from repro.baselines.rtl import RtlPlatformSim, RtlSwitch
from repro.baselines.speed import measure_engine_speeds, speed_report
from repro.baselines.tlm import TlmKernel, TlmPlatformSim
from repro.baselines.vcd import VcdTracer

__all__ = [
    "EventSimulator",
    "Process",
    "RtlPlatformSim",
    "RtlSwitch",
    "Signal",
    "TlmKernel",
    "TlmPlatformSim",
    "VcdTracer",
    "measure_engine_speeds",
    "speed_report",
]
