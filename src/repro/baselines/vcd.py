"""Value-change-dump (VCD) export for the event-driven kernel.

A real ModelSim run produces waveforms; this module gives the RTL
baseline the same capability: attach a :class:`VcdTracer` to an
:class:`~repro.baselines.eventsim.EventSimulator`, run, and write an
IEEE-1364 VCD file any standard viewer (GTKWave etc.) opens.  Integer
signal values are dumped as binary vectors; other values (e.g. flit
records on the abstracted data buses) are dumped as VCD "real"-width
string identifiers via the ``$comment``-free string trick: they are
hashed to a stable integer so transitions remain visible.

This is an extension beyond the paper (the slides only show result
plots), but it is what any user of an RTL baseline expects, and it
exercises the kernel's event stream end to end.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.eventsim import EventSimulator, Signal

#: Printable VCD identifier alphabet (IEEE 1364 §18.2.1).
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal number ``index``."""
    base = len(_ID_ALPHABET)
    out = []
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        out.append(_ID_ALPHABET[digit])
    return "".join(out)


def _encode(value, width: int) -> str:
    """Encode a Python value as a VCD binary vector of ``width`` bits."""
    if value is None:
        return "b" + "x" * width
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        if value < 0:
            value &= (1 << width) - 1
        return "b" + format(value, "b").zfill(width)[-width:]
    # Non-integer payloads (flit records): hash to a stable integer so
    # the waveform still shows *when* the bus changed.
    return "b" + format(hash(repr(value)) & ((1 << width) - 1), "b").zfill(
        width
    )


class VcdTracer:
    """Records value changes of selected signals and writes a VCD file.

    Parameters
    ----------
    sim:
        The kernel whose signals are traced.
    signals:
        Signals to trace (default: all signals registered so far).
    width:
        Vector width used for every signal (VCD requires a fixed
        declared width; 32 covers counters, pointers and hashes).
    timescale:
        Declared VCD timescale; one kernel clock cycle maps to one
        time unit.
    """

    def __init__(
        self,
        sim: EventSimulator,
        signals: Optional[Sequence[Signal]] = None,
        width: int = 32,
        timescale: str = "1 ns",
    ) -> None:
        if width < 1:
            raise ValueError("VCD vector width must be >= 1")
        self.sim = sim
        self.width = width
        self.timescale = timescale
        self.signals: List[Signal] = list(
            signals if signals is not None else sim.signals
        )
        self._ids: Dict[int, str] = {
            id(sig): _identifier(i) for i, sig in enumerate(self.signals)
        }
        self._last: Dict[int, object] = {
            id(sig): sig.value for sig in self.signals
        }
        #: (time, signal index, value) tuples in capture order.
        self.changes: List[Tuple[int, int, object]] = []
        self._initial = [sig.value for sig in self.signals]

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def sample(self) -> int:
        """Record changes since the last sample; returns change count.

        Call once per clock cycle (after ``tick``) — sub-cycle deltas
        are flattened, matching a waveform dumped at cycle granularity.
        """
        now = self.sim.time
        count = 0
        for index, sig in enumerate(self.signals):
            key = id(sig)
            if sig.value != self._last[key]:
                self._last[key] = sig.value
                self.changes.append((now, index, sig.value))
                count += 1
        return count

    def run_cycles(self, clock: Signal, cycles: int) -> None:
        """Convenience: tick the clock and sample every cycle."""
        for _ in range(cycles):
            self.sim.tick(clock)
            self.sample()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def write(self, path_or_file: Union[str, io.TextIOBase]) -> None:
        """Write the captured trace as an IEEE-1364 VCD file."""

        def _write(fh) -> None:
            fh.write("$date repro-noc emulation $end\n")
            fh.write("$version repro VcdTracer $end\n")
            fh.write(f"$timescale {self.timescale} $end\n")
            fh.write("$scope module platform $end\n")
            for index, sig in enumerate(self.signals):
                name = sig.name.replace(" ", "_") or f"sig{index}"
                fh.write(
                    f"$var wire {self.width} "
                    f"{self._ids[id(sig)]} {name} $end\n"
                )
            fh.write("$upscope $end\n")
            fh.write("$enddefinitions $end\n")
            fh.write("$dumpvars\n")
            for index, sig in enumerate(self.signals):
                fh.write(
                    f"{_encode(self._initial[index], self.width)}"
                    f" {self._ids[id(sig)]}\n"
                )
            fh.write("$end\n")
            current_time: Optional[int] = None
            for when, index, value in self.changes:
                if when != current_time:
                    fh.write(f"#{when}\n")
                    current_time = when
                sig = self.signals[index]
                fh.write(
                    f"{_encode(value, self.width)} {self._ids[id(sig)]}\n"
                )
            fh.write(f"#{self.sim.time}\n")

        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as fh:
                _write(fh)
        else:
            _write(path_or_file)
