"""RTL-granularity model of the emulation platform.

The Verilog/ModelSim row of the paper's speed table simulates the NoC
at register-transfer level: every FIFO slot, pointer, request, grant
and lock is an individual signal, combinational logic re-evaluates
through delta cycles, and all state advances on clock-edge processes.
:class:`RtlSwitch` is that decomposition of the platform switch, built
on :mod:`repro.baselines.eventsim`; :class:`RtlPlatformSim` wires six
of them into the paper topology with packet injectors and ejection
collectors.

Abstraction note: the data buses carry flit records instead of 34
individual bit signals, but every *control* wire (valid, ready,
request, grant, lock, pointers, counters) is a real signal with real
events — the per-cycle event count, which is what makes RTL simulation
slow, is therefore representative.

Flow control uses a registered ready/valid handshake whose ready view
is up to three cycles stale, so the RTL switch keeps deeper FIFOs
(``depth >= 6``) and advertises ready only while ``count < depth - 4``;
a hard overflow check in the sequential process enforces safety.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.baselines.eventsim import EventSimulator, Signal, SimulationError
from repro.noc.flit import Flit, Packet
from repro.noc.routing import TableRouting
from repro.noc.topology import Topology

#: Minimum FIFO depth that absorbs the handshake round trip.
MIN_RTL_DEPTH = 6

#: Ready is advertised while the FIFO holds fewer than depth-4 flits.
READY_MARGIN = 4


class RtlSwitch:
    """One platform switch at RTL granularity."""

    def __init__(
        self,
        sim: EventSimulator,
        switch_id: int,
        n_inputs: int,
        n_outputs: int,
        depth: int,
        route_table: Dict[int, int],
        clock: Signal,
    ) -> None:
        if depth < MIN_RTL_DEPTH:
            raise ValueError(
                f"RTL switch needs depth >= {MIN_RTL_DEPTH} to absorb"
                f" the registered handshake, got {depth}"
            )
        self.sim = sim
        self.switch_id = switch_id
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.depth = depth
        self.route_table = route_table
        s = sim.signal
        tag = f"sw{switch_id}"
        # Input-side registers.
        self.slots: List[List[Signal]] = [
            [s(f"{tag}.in{i}.slot{d}", None) for d in range(depth)]
            for i in range(n_inputs)
        ]
        self.count = [s(f"{tag}.in{i}.count", 0) for i in range(n_inputs)]
        self.rd = [s(f"{tag}.in{i}.rd", 0) for i in range(n_inputs)]
        self.wr = [s(f"{tag}.in{i}.wr", 0) for i in range(n_inputs)]
        self.in_valid = [
            s(f"{tag}.in{i}.valid", 0) for i in range(n_inputs)
        ]
        self.in_data = [
            s(f"{tag}.in{i}.data", None) for i in range(n_inputs)
        ]
        self.in_route = [
            s(f"{tag}.in{i}.route", -1) for i in range(n_inputs)
        ]
        self.in_ready = [
            s(f"{tag}.in{i}.ready", 1) for i in range(n_inputs)
        ]
        # Combinational nets.
        self.head = [s(f"{tag}.in{i}.head", None) for i in range(n_inputs)]
        self.req = [s(f"{tag}.in{i}.req", -1) for i in range(n_inputs)]
        self.grant = [s(f"{tag}.out{o}.grant", -1) for o in range(n_outputs)]
        # Output-side registers.
        self.out_valid = [
            s(f"{tag}.out{o}.valid", 0) for o in range(n_outputs)
        ]
        self.out_data = [
            s(f"{tag}.out{o}.data", None) for o in range(n_outputs)
        ]
        self.out_ok = [s(f"{tag}.out{o}.ok", 1) for o in range(n_outputs)]
        self.lock = [s(f"{tag}.out{o}.lock", -1) for o in range(n_outputs)]
        self.rr = [s(f"{tag}.out{o}.rr", 0) for o in range(n_outputs)]
        # Statistics.
        self.flits_forwarded = 0
        self._clock = clock
        self._build_processes(clock)

    # ------------------------------------------------------------------
    # Process construction
    # ------------------------------------------------------------------
    def _build_processes(self, clock: Signal) -> None:
        sim = self.sim
        tag = f"sw{self.switch_id}"
        for i in range(self.n_inputs):
            sim.process(
                f"{tag}.head{i}",
                lambda _i=i: self._comb_head(_i),
                sensitive_to=[self.rd[i], self.count[i]] + self.slots[i],
            )
            sim.process(
                f"{tag}.req{i}",
                lambda _i=i: self._comb_req(_i),
                sensitive_to=[self.head[i], self.in_route[i]],
            )
            sim.process(
                f"{tag}.ready{i}",
                lambda _i=i: self._comb_ready(_i),
                sensitive_to=[self.count[i]],
            )
        for o in range(self.n_outputs):
            sim.process(
                f"{tag}.grant{o}",
                lambda _o=o: self._comb_grant(_o),
                sensitive_to=(
                    self.req
                    + [self.lock[o], self.rr[o], self.out_ok[o]]
                ),
            )
        sim.process(f"{tag}.seq", self._seq, sensitive_to=[clock])

    # ------------------------------------------------------------------
    # Combinational logic
    # ------------------------------------------------------------------
    def _comb_head(self, i: int) -> None:
        if self.count[i].value > 0:
            head = self.slots[i][self.rd[i].value].value
        else:
            head = None
        self.sim.post(self.head[i], head)

    def _comb_req(self, i: int) -> None:
        head: Optional[Flit] = self.head[i].value
        if head is None:
            self.sim.post(self.req[i], -1)
            return
        cached = self.in_route[i].value
        if cached >= 0:
            self.sim.post(self.req[i], cached)
            return
        port = self.route_table.get(head.dst, -1)
        if port < 0:
            raise SimulationError(
                f"RTL switch {self.switch_id}: no route for destination"
                f" {head.dst}"
            )
        self.sim.post(self.req[i], port)

    def _comb_ready(self, i: int) -> None:
        ready = 1 if self.count[i].value < self.depth - READY_MARGIN else 0
        self.sim.post(self.in_ready[i], ready)

    def _comb_grant(self, o: int) -> None:
        if not self.out_ok[o].value:
            self.sim.post(self.grant[o], -1)
            return
        lock = self.lock[o].value
        if lock >= 0:
            winner = lock if self.req[lock].value == o else -1
            self.sim.post(self.grant[o], winner)
            return
        candidates = [
            i for i in range(self.n_inputs) if self.req[i].value == o
        ]
        if not candidates:
            self.sim.post(self.grant[o], -1)
            return
        pointer = self.rr[o].value
        winner = min(
            candidates,
            key=lambda i: (i - pointer) % self.n_inputs,
        )
        self.sim.post(self.grant[o], winner)

    # ------------------------------------------------------------------
    # Sequential logic (clock rising edge)
    # ------------------------------------------------------------------
    def _seq(self) -> None:
        # Sensitive to both clock edges; state advances on rising only.
        if not self._clock.value:
            return
        sim = self.sim
        pops = [0] * self.n_inputs
        pushes = [0] * self.n_inputs
        # Output stage: move granted head flits onto the output regs.
        for o in range(self.n_outputs):
            g = self.grant[o].value
            if g < 0 or self.count[g].value == 0 or pops[g]:
                sim.post(self.out_valid[o], 0)
                continue
            flit: Flit = self.slots[g][self.rd[g].value].value
            pops[g] = 1
            sim.post(self.rd[g], (self.rd[g].value + 1) % self.depth)
            sim.post(self.out_valid[o], 1)
            sim.post(self.out_data[o], flit)
            self.flits_forwarded += 1
            if flit.is_tail:
                sim.post(self.lock[o], -1)
                sim.post(self.in_route[g], -1)
            elif flit.is_head:
                sim.post(self.lock[o], g)
                sim.post(self.in_route[g], o)
            sim.post(self.rr[o], (g + 1) % self.n_inputs)
        # Input stage: accept arriving flits.
        for i in range(self.n_inputs):
            if not self.in_valid[i].value:
                continue
            occupancy = self.count[i].value - pops[i]
            if occupancy >= self.depth:
                raise SimulationError(
                    f"RTL switch {self.switch_id} input {i} FIFO"
                    f" overflow: the handshake failed"
                )
            flit = self.in_data[i].value
            sim.post(self.slots[i][self.wr[i].value], flit)
            sim.post(self.wr[i], (self.wr[i].value + 1) % self.depth)
            pushes[i] = 1
        # Commit occupancy updates once per input.
        for i in range(self.n_inputs):
            delta = pushes[i] - pops[i]
            if delta:
                sim.post(self.count[i], self.count[i].value + delta)

    @property
    def buffered_flits(self) -> int:
        return sum(c.value for c in self.count)


class _Injector:
    """Clocked packet injector (the RTL testbench's TG)."""

    def __init__(
        self,
        sim: EventSimulator,
        node: int,
        switch: RtlSwitch,
        in_port: int,
        packets: Sequence[Packet],
        clock: Signal,
    ) -> None:
        self.sim = sim
        self.node = node
        self.switch = switch
        self.in_port = in_port
        self._schedule: Deque[Packet] = deque(
            sorted(packets, key=lambda p: p.injection_cycle)
        )
        self._flits: Deque[Flit] = deque()
        self.flits_injected = 0
        self._clock = clock
        sim.process(f"inj{node}", self._tick, sensitive_to=[clock])

    def _tick(self) -> None:
        # Sensitive to both clock edges; act on the rising edge only.
        if not self._clock.value:
            return
        now = self.sim.time
        while (
            self._schedule
            and self._schedule[0].injection_cycle <= now
        ):
            self._flits.extend(self._schedule.popleft().flits())
        valid = self.switch.in_valid[self.in_port]
        data = self.switch.in_data[self.in_port]
        count = self.switch.count[self.in_port].value
        if self._flits and count < self.switch.depth - 2:
            self.sim.post(valid, 1)
            self.sim.post(data, self._flits.popleft())
            self.flits_injected += 1
        else:
            self.sim.post(valid, 0)

    @property
    def done(self) -> bool:
        return not self._schedule and not self._flits


class _Collector:
    """Clocked ejection-port monitor (the RTL testbench's TR)."""

    def __init__(
        self,
        sim: EventSimulator,
        node: int,
        switch: RtlSwitch,
        out_port: int,
        clock: Signal,
    ) -> None:
        self.sim = sim
        self.node = node
        self.switch = switch
        self.out_port = out_port
        self.flits_received = 0
        self.packets_received = 0
        sim.process(f"col{node}", self._tick, sensitive_to=[clock])
        self._clock = clock

    def _tick(self) -> None:
        if not self._clock.value:
            return
        if self.switch.out_valid[self.out_port].value:
            flit: Flit = self.switch.out_data[self.out_port].value
            self.flits_received += 1
            if flit.is_tail:
                self.packets_received += 1


class RtlPlatformSim:
    """The paper platform simulated at RTL granularity.

    Parameters
    ----------
    topology:
        Switch graph (typically ``paper_topology()``).
    routing:
        A :class:`~repro.noc.routing.TableRouting` instance (the RTL
        route logic is a per-switch lookup table).
    packets_per_source:
        node -> list of packets to inject (with ``injection_cycle``
        schedules).
    depth:
        FIFO depth of the RTL switches (>= 6).
    """

    def __init__(
        self,
        topology: Topology,
        routing: TableRouting,
        packets_per_source: Dict[int, Sequence[Packet]],
        depth: int = 8,
    ) -> None:
        self.sim = EventSimulator()
        self.clock = self.sim.signal("clk", 0)
        self.topology = topology
        self.switches: List[RtlSwitch] = [
            RtlSwitch(
                self.sim,
                s,
                topology.n_inputs(s),
                topology.n_outputs(s),
                depth,
                dict(routing.tables.get(s, {})),
                self.clock,
            )
            for s in range(topology.n_switches)
        ]
        self.injectors: List[_Injector] = []
        self.collectors: List[_Collector] = []
        self._wire_links()
        self._wire_nodes(packets_per_source)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire_links(self) -> None:
        topo = self.topology
        cursor: Dict[Tuple[int, int], int] = {}
        for a in range(topo.n_switches):
            for out_port, ep in enumerate(topo.switch_outputs[a]):
                if ep.kind != "switch":
                    continue
                b = ep.target
                in_port = self._next_input(a, b, cursor)
                self._link_process(a, out_port, b, in_port)

    def _next_input(
        self, a: int, b: int, cursor: Dict[Tuple[int, int], int]
    ) -> int:
        start = cursor.get((a, b), 0)
        seen = 0
        for port, src in enumerate(self.topology.switch_inputs[b]):
            if src.kind == "switch" and src.source == a:
                if seen == start:
                    cursor[(a, b)] = start + 1
                    return port
                seen += 1
        raise SimulationError(f"no input port on {b} for link {a}->{b}")

    def _link_process(
        self, a: int, out_port: int, b: int, in_port: int
    ) -> None:
        up, down = self.switches[a], self.switches[b]
        sim = self.sim
        clock = self.clock

        def tick() -> None:
            if not clock.value:
                return
            sim.post(down.in_valid[in_port], up.out_valid[out_port].value)
            sim.post(down.in_data[in_port], up.out_data[out_port].value)
            sim.post(up.out_ok[out_port], down.in_ready[in_port].value)

        sim.process(f"link{a}.{out_port}->{b}.{in_port}", tick, [clock])

    def _wire_nodes(
        self, packets_per_source: Dict[int, Sequence[Packet]]
    ) -> None:
        topo = self.topology
        for node, sw in enumerate(topo.node_switch):
            in_port = next(
                p
                for p, src in enumerate(topo.switch_inputs[sw])
                if src.kind == "node" and src.source == node
            )
            out_port = topo.output_port_to_node(sw, node)
            packets = packets_per_source.get(node, ())
            if packets:
                injector = _Injector(
                    self.sim,
                    node,
                    self.switches[sw],
                    in_port,
                    packets,
                    self.clock,
                )
                self.injectors.append(injector)
            collector = _Collector(
                self.sim, node, self.switches[sw], out_port, self.clock
            )
            self.collectors.append(collector)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        self.sim.run_cycles(self.clock, cycles)

    def run_until_drained(self, max_cycles: int = 100_000) -> int:
        """Run until all traffic is delivered; return cycles used."""
        start = self.sim.time
        while self.sim.time - start < max_cycles:
            self.run(32)
            if self.is_drained:
                return self.sim.time - start
        raise SimulationError(
            f"RTL platform failed to drain within {max_cycles} cycles"
        )

    @property
    def is_drained(self) -> bool:
        if any(not inj.done for inj in self.injectors):
            return False
        if any(sw.buffered_flits for sw in self.switches):
            return False
        return not any(
            sw.out_valid[o].value
            for sw in self.switches
            for o in range(sw.n_outputs)
        )

    @property
    def packets_received(self) -> int:
        return sum(c.packets_received for c in self.collectors)

    @property
    def flits_received(self) -> int:
        return sum(c.flits_received for c in self.collectors)

    @property
    def cycle(self) -> int:
        return self.sim.time
