"""Cycle-accurate transaction-level (SystemC-like) baseline.

The SystemC/MPARM row of the paper's speed table simulates the NoC
cycle-accurately but above RTL: processes run once per clock cycle and
communicate through channels with *request/update* semantics (a write
issued during the evaluate phase becomes visible after the update
phase), exactly the ``sc_fifo``/``sc_signal`` discipline of SystemC.
:class:`TlmKernel` is that scheduler; :class:`TlmPlatformSim` runs the
paper platform on it with one process per switch, injector and
collector, and one bounded FIFO channel per link.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.noc.flit import Flit, Packet
from repro.noc.routing import TableRouting
from repro.noc.topology import Topology


class TlmChannelError(RuntimeError):
    """Flow-control violation on a TLM channel."""


class TlmFifo:
    """A bounded FIFO channel with request/update semantics.

    ``nb_read``/``nb_write`` take effect at the end of the current
    delta (the kernel's update phase); capacity checks are performed
    against the pre-update state plus already-requested writes, so a
    producer can never overfill the channel within one cycle.
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("fifo capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Flit] = deque()
        self._pending_writes: List[Flit] = []
        self._pending_reads = 0
        self.transactions = 0

    # -- evaluate-phase interface --------------------------------------
    def num_available(self) -> int:
        """Items readable this cycle (not counting pending reads)."""
        return len(self._items) - self._pending_reads

    def num_free(self) -> int:
        """Slots writable this cycle (counting pending writes)."""
        return self.capacity - len(self._items) - len(self._pending_writes)

    def peek(self) -> Optional[Flit]:
        index = self._pending_reads
        if index < len(self._items):
            return self._items[index]
        return None

    def nb_read(self) -> Optional[Flit]:
        """Request a read; returns the item that will be consumed."""
        item = self.peek()
        if item is not None:
            self._pending_reads += 1
        return item

    def nb_write(self, item: Flit) -> bool:
        """Request a write; False if the channel is full this cycle."""
        if self.num_free() <= 0:
            return False
        self._pending_writes.append(item)
        return True

    # -- update-phase interface ----------------------------------------
    def update(self) -> None:
        for _ in range(self._pending_reads):
            self._items.popleft()
            self.transactions += 1
        self._pending_reads = 0
        if self._pending_writes:
            self._items.extend(self._pending_writes)
            self.transactions += len(self._pending_writes)
            self._pending_writes.clear()
        if len(self._items) > self.capacity:
            raise TlmChannelError(
                f"channel {self.name or id(self)} overfilled:"
                f" {len(self._items)}/{self.capacity}"
            )

    def __len__(self) -> int:
        return len(self._items)


class TlmKernel:
    """Evaluate/update scheduler: all processes, then all channels."""

    def __init__(self) -> None:
        self.processes: List[Tuple[str, Callable[[], None]]] = []
        self.channels: List[TlmFifo] = []
        self.time = 0
        self.process_activations = 0

    def process(self, name: str, callback: Callable[[], None]) -> None:
        self.processes.append((name, callback))

    def channel(self, capacity: int, name: str = "") -> TlmFifo:
        fifo = TlmFifo(capacity, name)
        self.channels.append(fifo)
        return fifo

    def cycle(self) -> None:
        for _name, callback in self.processes:
            callback()
            self.process_activations += 1
        for channel in self.channels:
            channel.update()
        self.time += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.cycle()


class _TlmSwitch:
    """One switch as a single cycle-accurate process."""

    def __init__(
        self,
        kernel: TlmKernel,
        switch_id: int,
        n_inputs: int,
        n_outputs: int,
        route_table: Dict[int, int],
    ) -> None:
        self.kernel = kernel
        self.switch_id = switch_id
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.route_table = route_table
        self.in_ch: List[Optional[TlmFifo]] = [None] * n_inputs
        self.out_ch: List[Optional[TlmFifo]] = [None] * n_outputs
        self._route_cache: List[int] = [-1] * n_inputs
        self._lock: List[int] = [-1] * n_outputs
        self._rr: List[int] = [0] * n_outputs
        self.flits_forwarded = 0
        kernel.process(f"sw{switch_id}", self._evaluate)

    def _desired(self, i: int) -> int:
        channel = self.in_ch[i]
        if channel is None or channel.num_available() == 0:
            return -1
        if self._route_cache[i] >= 0:
            return self._route_cache[i]
        head = channel.peek()
        assert head is not None
        port = self.route_table.get(head.dst, -1)
        if port < 0:
            raise TlmChannelError(
                f"TLM switch {self.switch_id}: no route for"
                f" destination {head.dst}"
            )
        return port

    def _evaluate(self) -> None:
        desires = [self._desired(i) for i in range(self.n_inputs)]
        for o in range(self.n_outputs):
            out = self.out_ch[o]
            if out is None or out.num_free() <= 0:
                continue
            lock = self._lock[o]
            if lock >= 0:
                winner = lock if desires[lock] == o else -1
            else:
                candidates = [
                    i
                    for i in range(self.n_inputs)
                    if desires[i] == o
                ]
                if not candidates:
                    continue
                pointer = self._rr[o]
                winner = min(
                    candidates,
                    key=lambda i: (i - pointer) % self.n_inputs,
                )
                self._rr[o] = (winner + 1) % self.n_inputs
            if winner < 0:
                continue
            in_channel = self.in_ch[winner]
            assert in_channel is not None
            flit = in_channel.nb_read()
            assert flit is not None
            out.nb_write(flit)
            self.flits_forwarded += 1
            if flit.is_tail:
                self._lock[o] = -1
                self._route_cache[winner] = -1
            elif flit.is_head:
                self._lock[o] = winner
                self._route_cache[winner] = o
            desires[winner] = -1  # one flit per input per cycle

    @property
    def buffered_flits(self) -> int:
        return sum(len(ch) for ch in self.in_ch if ch is not None)


class _TlmInjector:
    def __init__(
        self,
        kernel: TlmKernel,
        node: int,
        channel: TlmFifo,
        packets: Sequence[Packet],
    ) -> None:
        self.kernel = kernel
        self.node = node
        self.channel = channel
        self._schedule: Deque[Packet] = deque(
            sorted(packets, key=lambda p: p.injection_cycle)
        )
        self._flits: Deque[Flit] = deque()
        self.flits_injected = 0
        kernel.process(f"inj{node}", self._evaluate)

    def _evaluate(self) -> None:
        now = self.kernel.time
        while (
            self._schedule
            and self._schedule[0].injection_cycle <= now
        ):
            self._flits.extend(self._schedule.popleft().flits())
        if self._flits and self.channel.num_free() > 0:
            self.channel.nb_write(self._flits.popleft())
            self.flits_injected += 1

    @property
    def done(self) -> bool:
        return not self._schedule and not self._flits


class _TlmCollector:
    def __init__(
        self, kernel: TlmKernel, node: int, channel: TlmFifo
    ) -> None:
        self.node = node
        self.channel = channel
        self.flits_received = 0
        self.packets_received = 0
        kernel.process(f"col{node}", self._evaluate)

    def _evaluate(self) -> None:
        flit = self.channel.nb_read()
        if flit is not None:
            self.flits_received += 1
            if flit.is_tail:
                self.packets_received += 1


class TlmPlatformSim:
    """The paper platform on the SystemC-like kernel."""

    def __init__(
        self,
        topology: Topology,
        routing: TableRouting,
        packets_per_source: Dict[int, Sequence[Packet]],
        depth: int = 4,
    ) -> None:
        self.kernel = TlmKernel()
        self.topology = topology
        self.switches = [
            _TlmSwitch(
                self.kernel,
                s,
                topology.n_inputs(s),
                topology.n_outputs(s),
                dict(routing.tables.get(s, {})),
            )
            for s in range(topology.n_switches)
        ]
        self.injectors: List[_TlmInjector] = []
        self.collectors: List[_TlmCollector] = []
        self._wire(packets_per_source, depth)

    def _wire(
        self, packets_per_source: Dict[int, Sequence[Packet]], depth: int
    ) -> None:
        topo = self.topology
        cursor: Dict[Tuple[int, int], int] = {}
        for a in range(topo.n_switches):
            for out_port, ep in enumerate(topo.switch_outputs[a]):
                if ep.kind == "switch":
                    b = ep.target
                    in_port = self._next_input(a, b, cursor)
                    channel = self.kernel.channel(
                        depth, f"l{a}.{out_port}->{b}.{in_port}"
                    )
                    self.switches[a].out_ch[out_port] = channel
                    self.switches[b].in_ch[in_port] = channel
                else:
                    node = ep.target
                    channel = self.kernel.channel(depth, f"ej{node}")
                    self.switches[a].out_ch[out_port] = channel
                    self.collectors.append(
                        _TlmCollector(self.kernel, node, channel)
                    )
        for node, sw in enumerate(topo.node_switch):
            in_port = next(
                p
                for p, src in enumerate(topo.switch_inputs[sw])
                if src.kind == "node" and src.source == node
            )
            channel = self.kernel.channel(depth, f"inj{node}")
            self.switches[sw].in_ch[in_port] = channel
            packets = packets_per_source.get(node, ())
            if packets:
                self.injectors.append(
                    _TlmInjector(self.kernel, node, channel, packets)
                )

    def _next_input(
        self, a: int, b: int, cursor: Dict[Tuple[int, int], int]
    ) -> int:
        start = cursor.get((a, b), 0)
        seen = 0
        for port, src in enumerate(self.topology.switch_inputs[b]):
            if src.kind == "switch" and src.source == a:
                if seen == start:
                    cursor[(a, b)] = start + 1
                    return port
                seen += 1
        raise TlmChannelError(f"no input port on {b} for link {a}->{b}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        self.kernel.run(cycles)

    def run_until_drained(self, max_cycles: int = 1_000_000) -> int:
        start = self.kernel.time
        while self.kernel.time - start < max_cycles:
            self.run(32)
            if self.is_drained:
                return self.kernel.time - start
        raise TlmChannelError(
            f"TLM platform failed to drain within {max_cycles} cycles"
        )

    @property
    def is_drained(self) -> bool:
        if any(not inj.done for inj in self.injectors):
            return False
        return not any(
            len(ch) for ch in self.kernel.channels
        )

    @property
    def packets_received(self) -> int:
        return sum(c.packets_received for c in self.collectors)

    @property
    def flits_received(self) -> int:
        return sum(c.flits_received for c in self.collectors)

    @property
    def cycle(self) -> int:
        return self.kernel.time
