"""The speed-comparison harness (Slide 18 / Table 2).

Measures the emulated-cycles-per-second of the three engine classes in
this package on the *same* platform and workload:

* the cycle-level emulation engine (``repro.core``) — our stand-in for
  running the platform, fastest;
* the SystemC-like TLM engine — cycle-accurate with channel
  transactions, slower;
* the event-driven RTL engine — per-signal events and delta cycles,
  slowest by far;

and renders them next to the paper's reported speeds (emulation
50 Mcycles/s, SystemC 20 Kcycles/s, Verilog 3.2 Kcycles/s).  The claim
under reproduction is the *ordering and the orders-of-magnitude gaps*,
not the absolute numbers, which depend on the host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.flit import Packet
from repro.noc.routing import TableRouting, paper_routing
from repro.noc.topology import paper_flow_pairs, paper_topology
from repro.stats.runtime import PAPER_SPEEDS, SpeedReport

#: Modelled speed of the emulated platform itself (its 50 MHz clock).
MODELLED_EMULATION_SPEED = PAPER_SPEEDS["Our Emulation"]


def build_packet_schedule(
    packets_per_flow: int, length: int = 8, interval: int = 18
) -> Dict[int, List[Packet]]:
    """A deterministic uniform-traffic schedule on the paper flows.

    ``interval=18`` with ``length=8`` gives the 45% injection load of
    the paper's setup.  The same schedule feeds every engine so the
    speed comparison runs identical traffic.
    """
    schedule: Dict[int, List[Packet]] = {}
    for src, dst in paper_flow_pairs():
        schedule[src] = [
            Packet(
                src=src,
                dst=dst,
                length=length,
                injection_cycle=k * interval,
            )
            for k in range(packets_per_flow)
        ]
    return schedule


@dataclass
class EngineMeasurement:
    """Measured speed of one engine on the shared workload."""

    name: str
    cycles: int
    wall_seconds: float
    packets_received: int

    @property
    def cycles_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.cycles / self.wall_seconds


def _measure_emulation(packets_per_flow: int) -> EngineMeasurement:
    config = paper_platform_config(
        traffic="uniform", max_packets=packets_per_flow
    )
    platform = build_platform(config)
    engine = EmulationEngine(platform)
    result = engine.run()
    return EngineMeasurement(
        name="repro cycle-level engine",
        cycles=result.cycles,
        wall_seconds=result.wall_seconds,
        packets_received=result.packets_received,
    )


def _measure_tlm(packets_per_flow: int) -> EngineMeasurement:
    from repro.baselines.tlm import TlmPlatformSim

    topo = paper_topology()
    routing = paper_routing(topo, "overlap")
    assert isinstance(routing, TableRouting)
    sim = TlmPlatformSim(
        topo, routing, build_packet_schedule(packets_per_flow)
    )
    started = time.perf_counter()  # repro: allow[wall-clock] benchmark harness measures host speed by design
    cycles = sim.run_until_drained()
    wall = time.perf_counter() - started  # repro: allow[wall-clock] benchmark harness measures host speed by design
    return EngineMeasurement(
        name="repro TLM engine (SystemC-like)",
        cycles=cycles,
        wall_seconds=wall,
        packets_received=sim.packets_received,
    )


def _measure_rtl(packets_per_flow: int) -> EngineMeasurement:
    from repro.baselines.rtl import RtlPlatformSim

    topo = paper_topology()
    routing = paper_routing(topo, "overlap")
    assert isinstance(routing, TableRouting)
    sim = RtlPlatformSim(
        topo, routing, build_packet_schedule(packets_per_flow)
    )
    started = time.perf_counter()  # repro: allow[wall-clock] benchmark harness measures host speed by design
    cycles = sim.run_until_drained()
    wall = time.perf_counter() - started  # repro: allow[wall-clock] benchmark harness measures host speed by design
    return EngineMeasurement(
        name="repro RTL engine (event-driven)",
        cycles=cycles,
        wall_seconds=wall,
        packets_received=sim.packets_received,
    )


def measure_engine_speeds(
    emulation_packets: int = 2000,
    tlm_packets: int = 500,
    rtl_packets: int = 60,
) -> List[EngineMeasurement]:
    """Run all three engines; scale workloads to their speed class.

    Each engine runs the same *kind* of workload (the paper uniform
    setup); the slower engines get proportionally fewer packets so the
    harness completes in seconds, exactly as the paper never ran 1000
    Mpackets through ModelSim either — speeds extrapolate linearly in
    cycles.
    """
    return [
        _measure_emulation(emulation_packets),
        _measure_tlm(tlm_packets),
        _measure_rtl(rtl_packets),
    ]


def speed_report(
    measurements: Optional[Sequence[EngineMeasurement]] = None,
    cycles_per_packet: Optional[float] = None,
    include_paper_rows: bool = True,
) -> SpeedReport:
    """Build the Slide 18 table from measurements.

    ``cycles_per_packet`` defaults to the calibration of the fastest
    measured engine (total cycles / packets received), so the "time for
    N Mpackets" columns of every row describe the same workload.
    """
    if measurements is None:
        measurements = measure_engine_speeds()
    if cycles_per_packet is None:
        first = measurements[0]
        if first.packets_received == 0:
            raise ValueError(
                "cannot calibrate cycles/packet: no packets received"
            )
        cycles_per_packet = first.cycles / first.packets_received
    report = SpeedReport(cycles_per_packet)
    if include_paper_rows:
        report.add_paper_modes()
    report.add_mode(
        "Modelled emulation @50MHz", MODELLED_EMULATION_SPEED
    )
    for m in measurements:
        report.add_mode(m.name, m.cycles_per_sec, measured=True)
    return report
