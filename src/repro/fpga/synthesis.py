"""The physical-synthesis step (flow step 2).

Produces the FPGA utilisation report of the paper's Slide 17: one row
per device type with slice count and device percentage, plus totals,
the chosen part, and the achievable clock.  This stands in for the
Xilinx synthesis/map/par run of the real flow (DESIGN.md §2) and is
deliberately slow to *re-run* in the flow's accounting, so the flow's
caching of hardware steps has something real to save.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fpga.costs import (
    ResourceEstimate,
    control_cost,
    switch_cost,
    tg_cost,
    tr_cost,
)
from repro.fpga.device import (
    FpgaPart,
    PAPER_PART_NAME,
    part_by_name,
    smallest_fitting_part,
)
from repro.fpga.timing import platform_clock_hz


@dataclass
class SynthesisReport:
    """Result of synthesising one platform configuration."""

    platform_name: str
    part: FpgaPart
    rows: List[Tuple[str, int, float]]  # (device, slices, % of part)
    total_slices: int
    total_bram: int
    clock_hz: float
    fits: bool

    @property
    def utilisation(self) -> float:
        return self.part.utilisation(self.total_slices)

    def row_for(self, device_name: str) -> Tuple[str, int, float]:
        for row in self.rows:
            if row[0] == device_name:
                return row
        raise KeyError(f"no synthesis row for device {device_name!r}")

    def render(self) -> str:
        """Plain-text table in the layout of the paper's Slide 17."""
        lines = [
            f"Synthesis report: {self.platform_name} on {self.part.name}",
            f"Clock: {self.clock_hz / 1e6:.0f} MHz",
            "",
            f"{'Device':<24}{'Number of slices':>18}"
            f"{'FPGA percentage (%)':>22}",
            "-" * 64,
        ]
        for name, slices, pct in self.rows:
            lines.append(f"{name:<24}{slices:>18}{pct:>21.1f}%")
        lines.append("-" * 64)
        lines.append(
            f"{'whole platform':<24}{self.total_slices:>18}"
            f"{self.utilisation * 100:>21.1f}%"
        )
        if self.total_bram:
            lines.append(
                f"{'block RAM (18kb)':<24}{self.total_bram:>18}"
            )
        if not self.fits:
            lines.append(
                f"** DOES NOT FIT {self.part.name}"
                f" ({self.part.slices} slices) **"
            )
        return "\n".join(lines)


def synthesize(
    config,
    part: Optional[FpgaPart] = None,
    auto_part: bool = False,
) -> SynthesisReport:
    """Run the synthesis model on a platform configuration.

    ``part`` pins the target device (default: the paper's XC2VP20);
    ``auto_part=True`` instead picks the smallest family member that
    fits, which is how the capacity-planning bench explores the
    "larger FPGAs -> tens of switches" claim of the conclusion.
    """
    topology = config.resolve_topology()
    # Per-type aggregation: one row per device *type* as in the paper,
    # costing each instance at its real geometry.
    type_totals: Dict[str, ResourceEstimate] = {}

    def accumulate(row_name: str, estimate: ResourceEstimate) -> None:
        if row_name in type_totals:
            prior = type_totals[row_name]
            type_totals[row_name] = ResourceEstimate(
                row_name,
                prior.slices + estimate.slices,
                prior.bram_blocks + estimate.bram_blocks,
            )
        else:
            type_totals[row_name] = ResourceEstimate(
                row_name, estimate.slices, estimate.bram_blocks
            )

    for tg in config.tgs:
        trace_records = 0
        if tg.model == "trace":
            trace = tg.params.get("trace")
            if trace is not None:
                trace_records = len(trace)
            else:
                trace_records = tg.params.get(
                    "n_bursts", 1
                ) * tg.params.get("packets_per_burst", 1)
        estimate = tg_cost(
            tg.model,
            queue_limit=tg.queue_limit,
            trace_records=trace_records,
        )
        row = (
            "TG trace driven" if tg.model == "trace" else "TG stochastic"
        )
        accumulate(row, estimate)
    for tr in config.trs:
        estimate = tr_cost(tr.kind, **_tr_geometry(tr))
        row = (
            "TR stochastic"
            if tr.kind == "stochastic"
            else "TR trace driven"
        )
        accumulate(row, estimate)
    accumulate("Control module", control_cost())
    switch_total = 0
    for s in range(topology.n_switches):
        switch_total += switch_cost(
            topology.n_inputs(s),
            topology.n_outputs(s),
            config.buffer_depth,
        ).slices
    accumulate(
        "Switch fabric", ResourceEstimate("switches", switch_total)
    )

    total_slices = sum(e.slices for e in type_totals.values())
    total_bram = sum(e.bram_blocks for e in type_totals.values())
    if auto_part:
        chosen = smallest_fitting_part(total_slices, total_bram)
        if chosen is None:
            chosen = part_by_name("XC2VP100")
    else:
        chosen = part if part is not None else part_by_name(PAPER_PART_NAME)
    rows = [
        (name, est.slices, 100.0 * est.slices / chosen.slices)
        for name, est in type_totals.items()
    ]
    return SynthesisReport(
        platform_name=config.name,
        part=chosen,
        rows=rows,
        total_slices=total_slices,
        total_bram=total_bram,
        clock_hz=platform_clock_hz(config),
        fits=chosen.fits(total_slices, total_bram),
    )


def _tr_geometry(tr_spec) -> Dict[str, int]:
    """Histogram geometry of a receptor spec, for the cost model."""
    params = tr_spec.params
    if tr_spec.kind == "stochastic":
        counters = (
            params.get("length_bins", 16)
            + params.get("gap_bins", 32)
            + params.get("n_sources", 16)
        )
        return {"histogram_counters": counters}
    return {"latency_bins": params.get("latency_bins", 64)}
