"""Timing model: the achievable platform clock.

Slide 18: "Platform speed: 50 MHz.  The speed has been chosen regarding
the possibilities of our Virtex 2 Pro FPGA."  The critical path of the
emulation platform runs through a switch: route lookup, arbitration
(grows with the input count), crossbar traversal and the buffer write,
plus bus address decode growing with the device population.  The
constants below are fitted so the paper's default platform (radix-4
switches, depth-4 buffers, 9 devices) lands in the 50 MHz speed grade.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Standard speed grades the platform clock is quantised down to (MHz).
CLOCK_GRID_MHZ = (25, 33, 40, 50, 66, 75, 100)

_BASE_NS = 11.0  # register-to-register logic floor
_ARBITER_NS_PER_LOG_INPUT = 1.8
_BUFFER_NS_PER_DEPTH = 0.6
_DECODE_NS_PER_LOG_DEVICE = 0.4


def critical_path_ns(
    max_switch_inputs: int, buffer_depth: int, n_devices: int
) -> float:
    """Estimated critical path of the platform in nanoseconds."""
    if max_switch_inputs < 1 or buffer_depth < 1 or n_devices < 1:
        raise ValueError("timing model parameters must be >= 1")
    return (
        _BASE_NS
        + _ARBITER_NS_PER_LOG_INPUT
        * math.ceil(math.log2(max(2, max_switch_inputs)))
        + _BUFFER_NS_PER_DEPTH * buffer_depth
        + _DECODE_NS_PER_LOG_DEVICE
        * math.ceil(math.log2(max(2, n_devices)))
    )


def achievable_clock_hz(
    max_switch_inputs: int,
    buffer_depth: int,
    n_devices: int,
    grid_mhz: Sequence[int] = CLOCK_GRID_MHZ,
) -> float:
    """Platform clock: critical-path f_max quantised down to the grid.

    Returns the highest grid frequency whose period covers the critical
    path; falls back to the raw f_max when even the lowest grid entry
    is too fast (tiny grids in tests).
    """
    path = critical_path_ns(max_switch_inputs, buffer_depth, n_devices)
    f_max_mhz = 1000.0 / path
    feasible = [f for f in grid_mhz if f <= f_max_mhz]
    if not feasible:
        return f_max_mhz * 1e6
    return max(feasible) * 1e6


def platform_clock_hz(config) -> float:
    """Achievable clock of a :class:`~repro.core.config.PlatformConfig`."""
    topology = config.resolve_topology()
    max_inputs = max(
        topology.n_inputs(s) for s in range(topology.n_switches)
    )
    n_devices = len(config.tgs) + len(config.trs) + 1  # + control
    return achievable_clock_hz(
        max_inputs, config.buffer_depth, n_devices
    )
