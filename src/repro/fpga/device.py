"""Virtex-2 Pro part database.

Slice and block-RAM capacities of the Xilinx Virtex-2 Pro family (from
the XC2VP data sheet).  The paper's board carries the part we infer
from Table 1's percentages (XC2VP20, 9280 slices); the conclusion slide
("with larger FPGAs it will be possible to emulate very large NoCs")
motivates keeping the whole family here so the capacity-planning bench
can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class FpgaPart:
    """One FPGA device."""

    name: str
    slices: int
    bram_blocks: int  # 18 kbit block RAMs
    has_ppc: bool  # embedded PowerPC cores available

    def utilisation(self, used_slices: int) -> float:
        """Used fraction of the slice fabric."""
        if used_slices < 0:
            raise ValueError("slice count must be >= 0")
        return used_slices / self.slices

    def fits(self, used_slices: int, used_bram: int = 0) -> bool:
        return used_slices <= self.slices and used_bram <= self.bram_blocks


#: The Virtex-2 Pro family, smallest to largest.
VIRTEX2PRO_PARTS: List[FpgaPart] = [
    FpgaPart("XC2VP2", 1408, 12, False),
    FpgaPart("XC2VP4", 3008, 28, True),
    FpgaPart("XC2VP7", 4928, 44, True),
    FpgaPart("XC2VP20", 9280, 88, True),
    FpgaPart("XC2VP30", 13696, 136, True),
    FpgaPart("XC2VP40", 19392, 192, True),
    FpgaPart("XC2VP50", 23616, 232, True),
    FpgaPart("XC2VP70", 33088, 328, True),
    FpgaPart("XC2VP100", 44096, 444, True),
]

#: The paper's inferred target device.
PAPER_PART_NAME = "XC2VP20"


def part_by_name(name: str) -> FpgaPart:
    for part in VIRTEX2PRO_PARTS:
        if part.name == name:
            return part
    raise KeyError(
        f"unknown Virtex-2 Pro part {name!r}; known:"
        f" {[p.name for p in VIRTEX2PRO_PARTS]}"
    )


def smallest_fitting_part(
    used_slices: int,
    used_bram: int = 0,
    require_ppc: bool = True,
    parts: Optional[Sequence[FpgaPart]] = None,
) -> Optional[FpgaPart]:
    """Smallest family member that fits the design, or None.

    ``require_ppc`` defaults to True because the platform needs the
    embedded PowerPC that orchestrates the emulation (Slide 8).
    """
    for part in parts if parts is not None else VIRTEX2PRO_PARTS:
        if require_ppc and not part.has_ppc:
            continue
        if part.fits(used_slices, used_bram):
            return part
    return None
