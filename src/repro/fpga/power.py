"""Activity-based power estimation.

An extension beyond the paper (the slides report area and speed only),
but a natural one for the platform: the statistics the emulation
already gathers — flits forwarded per switch, flits injected/received
per device — are exactly the switching-activity inputs an FPGA power
estimator needs.  The model follows the standard CMOS decomposition::

    P_total = P_static + P_dynamic
    P_static  = slices_total x p_static_per_slice        (leakage)
    P_dynamic = sum over components:
                slices x p_dyn_per_slice x (f / f_ref) x activity

with Virtex-II-Pro-class constants.  Activity is the measured fraction
of cycles a component toggled (moved a flit), in [0, 1].

The absolute milliwatt numbers are indicative, not sign-off quality;
what the model is *for* is comparing configurations — e.g. the
buffer-depth ablation trades slices (static power) against congestion
(activity duration) — using measured emulation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fpga.costs import control_cost, switch_cost, tg_cost, tr_cost

#: Leakage per occupied slice (mW) — Virtex-II Pro class, 1.5 V core.
STATIC_MW_PER_SLICE = 0.012

#: Dynamic power per slice at 100% activity and the reference clock.
DYNAMIC_MW_PER_SLICE = 0.19

#: Reference clock for the dynamic constant.
F_REF_HZ = 100e6


@dataclass
class PowerRow:
    """Power of one platform component."""

    name: str
    slices: int
    activity: float
    static_mw: float
    dynamic_mw: float

    @property
    def total_mw(self) -> float:
        return self.static_mw + self.dynamic_mw


@dataclass
class PowerReport:
    """Per-component and total power of one emulation run."""

    platform_name: str
    clock_hz: float
    rows: List[PowerRow]

    @property
    def static_mw(self) -> float:
        return sum(r.static_mw for r in self.rows)

    @property
    def dynamic_mw(self) -> float:
        return sum(r.dynamic_mw for r in self.rows)

    @property
    def total_mw(self) -> float:
        return self.static_mw + self.dynamic_mw

    def row_for(self, name: str) -> PowerRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no power row for {name!r}")

    def render(self) -> str:
        lines = [
            f"Power estimate: {self.platform_name}"
            f" @ {self.clock_hz / 1e6:.0f} MHz",
            f"{'Component':<16}{'slices':>8}{'activity':>10}"
            f"{'static mW':>11}{'dynamic mW':>12}{'total mW':>10}",
            "-" * 67,
        ]
        for r in self.rows:
            lines.append(
                f"{r.name:<16}{r.slices:>8}{r.activity:>9.1%}"
                f"{r.static_mw:>11.2f}{r.dynamic_mw:>12.2f}"
                f"{r.total_mw:>10.2f}"
            )
        lines.append("-" * 67)
        lines.append(
            f"{'total':<16}{'':>8}{'':>10}{self.static_mw:>11.2f}"
            f"{self.dynamic_mw:>12.2f}{self.total_mw:>10.2f}"
        )
        return "\n".join(lines)


def _dynamic_mw(slices: int, activity: float, clock_hz: float) -> float:
    activity = min(1.0, max(0.0, activity))
    return (
        slices * DYNAMIC_MW_PER_SLICE * (clock_hz / F_REF_HZ) * activity
    )


def estimate_power(platform, elapsed_cycles: Optional[int] = None):
    """Power report for a run of an :class:`EmulationPlatform`.

    ``elapsed_cycles`` defaults to the platform's current cycle count;
    pass a window length when statistics were reset mid-run.
    """
    config = platform.config
    clock = config.f_clk_hz
    cycles = (
        elapsed_cycles if elapsed_cycles is not None else platform.cycle
    )
    cycles = max(1, cycles)
    rows: List[PowerRow] = []

    for switch in platform.network.switches:
        est = switch_cost(
            switch.config.n_inputs,
            switch.config.n_outputs,
            switch.config.buffer_depth,
        )
        # A switch is "active" in a cycle proportionally to the ports
        # that moved a flit.
        port_cycles = cycles * switch.config.n_outputs
        activity = switch.flits_forwarded / port_cycles
        rows.append(
            PowerRow(
                name=f"switch{switch.switch_id}",
                slices=est.slices,
                activity=activity,
                static_mw=est.slices * STATIC_MW_PER_SLICE,
                dynamic_mw=_dynamic_mw(est.slices, activity, clock),
            )
        )

    for generator, device in zip(
        platform.generators, platform.tg_devices
    ):
        spec_model = device.bank["MODEL_TYPE"].read()
        model = "trace" if spec_model == 5 else "uniform"
        est = tg_cost(model, queue_limit=generator.queue_limit)
        activity = generator.flits_sent / cycles
        rows.append(
            PowerRow(
                name=f"tg{generator.node}",
                slices=est.slices,
                activity=min(1.0, activity),
                static_mw=est.slices * STATIC_MW_PER_SLICE,
                dynamic_mw=_dynamic_mw(est.slices, activity, clock),
            )
        )

    for receptor in platform.receptors:
        kind = (
            "stochastic"
            if type(receptor).__name__ == "StochasticReceptor"
            else "tracedriven"
        )
        est = tr_cost(kind)
        activity = receptor.flits_received / cycles
        rows.append(
            PowerRow(
                name=f"tr{receptor.node}",
                slices=est.slices,
                activity=min(1.0, activity),
                static_mw=est.slices * STATIC_MW_PER_SLICE,
                dynamic_mw=_dynamic_mw(est.slices, activity, clock),
            )
        )

    control = control_cost()
    rows.append(
        PowerRow(
            name="control",
            slices=control.slices,
            activity=1.0,  # the control module's counters always tick
            static_mw=control.slices * STATIC_MW_PER_SLICE,
            dynamic_mw=_dynamic_mw(control.slices, 1.0, clock),
        )
    )
    return PowerReport(
        platform_name=config.name, clock_hz=clock, rows=rows
    )
