"""FPGA synthesis model (substitute for the Xilinx toolchain + board).

The paper reports per-device slice counts and utilisation on a Virtex-2
Pro (Table 1 / Slide 17) and a 50 MHz platform clock (Slide 18).  We
have no FPGA, so this package models the *accounting*: a component-level
slice cost model calibrated against Table 1, a Virtex-2 Pro part
database, a timing model for the achievable clock, and a synthesis
"flow" producing the utilisation report the paper shows.

Calibration note: the paper's utilisation figures (719 slices = 7.8%,
371 = 4.0%, 18 = 0.2%, platform 7387 = 80%) are all consistent with a
9280-slice part — the XC2VP20 — which is therefore the default target
device.
"""

from repro.fpga.costs import (
    ResourceEstimate,
    control_cost,
    platform_cost,
    switch_cost,
    tg_cost,
    tr_cost,
)
from repro.fpga.device import (
    FpgaPart,
    VIRTEX2PRO_PARTS,
    part_by_name,
    smallest_fitting_part,
)
from repro.fpga.power import PowerReport, PowerRow, estimate_power
from repro.fpga.synthesis import SynthesisReport, synthesize
from repro.fpga.timing import achievable_clock_hz, critical_path_ns

__all__ = [
    "PowerReport",
    "PowerRow",
    "estimate_power",
    "FpgaPart",
    "ResourceEstimate",
    "SynthesisReport",
    "VIRTEX2PRO_PARTS",
    "achievable_clock_hz",
    "control_cost",
    "critical_path_ns",
    "part_by_name",
    "platform_cost",
    "smallest_fitting_part",
    "switch_cost",
    "synthesize",
    "tg_cost",
    "tr_cost",
]
