"""Slice cost model.

Two kinds of numbers live here:

* **Calibrated device constants** — Table 1 of the paper reports the
  slice cost of each device type at its default geometry (TG stochastic
  719, TG trace-driven 652, TR stochastic 371, TR trace-driven 690,
  control module 18).  These are taken as ground truth.
* **Parametric terms** — the switch cost and the deltas for non-default
  device geometry are modelled structurally (per input buffer, per
  arbiter, per crosspoint, per histogram counter) with constants fitted
  so the paper's whole 4-TG/4-TR/6-switch platform lands on its
  reported 7387 slices (the switch fabric is the residual:
  7387 - 4x719 - 4x371 - 18 = 3009 slices over 6 switches of the
  reconstructed 2x3 mesh).

All costs are in Virtex-II slices (1 slice = 2 LUTs + 2 flip-flops);
trace memories are charged to 18 kbit block RAMs instead of slices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Physical flit width on the emulated links: 32 data bits + 2 type bits.
FLIT_BITS = 34

# --- Table 1 calibration constants (slices at default geometry) -------
TG_STOCHASTIC_SLICES = 719
TG_TRACE_SLICES = 652
TR_STOCHASTIC_SLICES = 371
TR_TRACE_SLICES = 690
CONTROL_SLICES = 18

# --- default geometries the calibration constants correspond to -------
DEFAULT_TG_QUEUE_FLITS = 64
DEFAULT_TR_HIST_COUNTERS = 64  # 16 length + 32 gap + 16 source bins
DEFAULT_TR_LAT_BINS = 64

# --- structural switch model constants (fitted, see module docstring) -
_INPUT_SLICES_PER_DEPTH = 17  # 34-bit flit register pair per slice
_INPUT_BASE_SLICES = 12  # route lookup + credit counter per input
_ARBITER_BASE_SLICES = 4
_ARBITER_SLICES_PER_INPUT = 2
_CROSSPOINT_SLICES = 10
_SWITCH_BASE_SLICES = 30

# --- marginal costs of non-default device geometry --------------------
_QUEUE_SLICES_PER_FLIT = FLIT_BITS / 2 / 16  # queue kept in SRL16 LUTs
_HIST_SLICES_PER_COUNTER = 1.0  # one 32-bit counter per ~1 slice column
_BRAM_BITS = 18 * 1024
_TRACE_RECORD_BITS = 48  # cycle delta + dst + length + burst id


@dataclass(frozen=True)
class ResourceEstimate:
    """Slice + block-RAM estimate of one component."""

    name: str
    slices: int
    bram_blocks: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            name=f"{self.name}+{other.name}",
            slices=self.slices + other.slices,
            bram_blocks=self.bram_blocks + other.bram_blocks,
        )


def switch_cost(
    n_inputs: int, n_outputs: int, buffer_depth: int
) -> ResourceEstimate:
    """Structural slice cost of one switch.

    Per input: the flit FIFO (two 34-bit registers per slice, times the
    depth) plus route-lookup and credit logic; per output: a round-robin
    arbiter growing with the input count; plus the crossbar (per
    crosspoint) and a fixed control base.
    """
    if n_inputs < 1 or n_outputs < 1 or buffer_depth < 1:
        raise ValueError("switch parameters must be >= 1")
    per_input = (
        _INPUT_SLICES_PER_DEPTH * buffer_depth + _INPUT_BASE_SLICES
    )
    per_output = _ARBITER_BASE_SLICES + _ARBITER_SLICES_PER_INPUT * n_inputs
    crossbar = _CROSSPOINT_SLICES * n_inputs * n_outputs
    slices = (
        n_inputs * per_input
        + n_outputs * per_output
        + crossbar
        + _SWITCH_BASE_SLICES
    )
    return ResourceEstimate(
        name=f"switch_{n_inputs}x{n_outputs}_d{buffer_depth}",
        slices=slices,
    )


def tg_cost(
    model: str,
    queue_limit: int = DEFAULT_TG_QUEUE_FLITS,
    trace_records: int = 0,
) -> ResourceEstimate:
    """Slice cost of one traffic generator.

    ``model`` is a traffic-model tag; every stochastic model shares the
    one stochastic-TG datapath of Table 1 (the model is a register
    setting, not different hardware), while ``trace`` selects the
    trace-driven TG, whose trace memory is charged to block RAM.
    """
    if queue_limit < 1:
        raise ValueError("queue limit must be >= 1 flit")
    extra_queue = max(0, queue_limit - DEFAULT_TG_QUEUE_FLITS)
    delta = math.ceil(extra_queue * _QUEUE_SLICES_PER_FLIT)
    if model == "trace":
        bram = math.ceil(
            max(1, trace_records) * _TRACE_RECORD_BITS / _BRAM_BITS
        )
        return ResourceEstimate(
            name="tg_trace",
            slices=TG_TRACE_SLICES + delta,
            bram_blocks=bram,
        )
    if model in ("uniform", "burst", "poisson", "onoff"):
        return ResourceEstimate(
            name="tg_stochastic", slices=TG_STOCHASTIC_SLICES + delta
        )
    raise ValueError(f"unknown traffic model {model!r}")


def tr_cost(
    kind: str,
    histogram_counters: int = DEFAULT_TR_HIST_COUNTERS,
    latency_bins: int = DEFAULT_TR_LAT_BINS,
) -> ResourceEstimate:
    """Slice cost of one traffic receptor.

    Stochastic receptors scale with their total histogram counter
    count; trace-driven receptors with their latency histogram bins.
    """
    if kind == "stochastic":
        if histogram_counters < 1:
            raise ValueError("receptor needs >= 1 histogram counter")
        delta = math.ceil(
            max(0, histogram_counters - DEFAULT_TR_HIST_COUNTERS)
            * _HIST_SLICES_PER_COUNTER
        )
        return ResourceEstimate(
            name="tr_stochastic", slices=TR_STOCHASTIC_SLICES + delta
        )
    if kind == "tracedriven":
        if latency_bins < 1:
            raise ValueError("receptor needs >= 1 latency bin")
        delta = math.ceil(
            max(0, latency_bins - DEFAULT_TR_LAT_BINS)
            * _HIST_SLICES_PER_COUNTER
        )
        return ResourceEstimate(
            name="tr_tracedriven", slices=TR_TRACE_SLICES + delta
        )
    raise ValueError(f"unknown receptor kind {kind!r}")


def control_cost() -> ResourceEstimate:
    """The control module (Table 1: 18 slices)."""
    return ResourceEstimate(name="control", slices=CONTROL_SLICES)


def platform_cost(config) -> ResourceEstimate:
    """Total slice/BRAM cost of a platform configuration.

    Accepts a :class:`~repro.core.config.PlatformConfig`; resolves its
    topology to price every switch at its actual port counts.
    """
    topology = config.resolve_topology()
    total_slices = 0
    total_bram = 0
    for s in range(topology.n_switches):
        total_slices += switch_cost(
            topology.n_inputs(s),
            topology.n_outputs(s),
            config.buffer_depth,
        ).slices
    for tg in config.tgs:
        trace_records = 0
        if tg.model == "trace":
            trace = tg.params.get("trace")
            if trace is not None:
                trace_records = len(trace)
            else:
                trace_records = tg.params.get(
                    "n_bursts", 1
                ) * tg.params.get("packets_per_burst", 1)
        estimate = tg_cost(
            tg.model,
            queue_limit=tg.queue_limit,
            trace_records=trace_records,
        )
        total_slices += estimate.slices
        total_bram += estimate.bram_blocks
    for tr in config.trs:
        total_slices += tr_cost(tr.kind).slices
    total_slices += control_cost().slices
    return ResourceEstimate(
        name=config.name, slices=total_slices, bram_blocks=total_bram
    )
