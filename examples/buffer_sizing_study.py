"""Buffer sizing with the occupancy and power reports.

The "size of buffers" switch parameter (Slide 6) trades FPGA area and
power against congestion.  This study runs burst traffic over a range
of buffer depths and, for each depth, combines:

* the occupancy report (what depth the traffic actually used),
* the synthesis model (slices), and
* the activity-based power model (mW),

then prints the sizing suggestion the occupancy data implies.

Run:  python examples/buffer_sizing_study.py
"""

from repro import EmulationEngine, build_platform, paper_platform_config
from repro.fpga.power import estimate_power
from repro.fpga.synthesis import synthesize
from repro.stats.occupancy import OccupancyReport


def run_depth(depth: int):
    config = paper_platform_config(
        traffic="burst",
        max_packets=1200,
        buffer_depth=depth,
        seed=12,
    )
    config.sample_buffers = True
    platform = build_platform(config)
    EmulationEngine(platform).run()
    occupancy = OccupancyReport(platform.network)
    power = estimate_power(platform)
    synth = synthesize(config)
    return {
        "congestion": platform.congestion_rate(),
        "latency": platform.mean_latency(),
        "peak_used": occupancy.peak_depth_used(),
        "pressure": occupancy.mean_pressure(),
        "slices": synth.total_slices,
        "power_mw": power.total_mw,
    }


def main() -> None:
    print(
        f"{'depth':>5}{'congestion':>12}{'latency':>9}"
        f"{'peak used':>11}{'pressure':>10}{'slices':>8}{'mW':>9}"
    )
    print("-" * 64)
    results = {}
    for depth in (1, 2, 4, 8, 16):
        r = run_depth(depth)
        results[depth] = r
        print(
            f"{depth:>5}{r['congestion']:>12.4f}{r['latency']:>9.1f}"
            f"{r['peak_used']:>11}{r['pressure']:>10.1%}"
            f"{r['slices']:>8}{r['power_mw']:>9.1f}"
        )

    # The sizing logic a designer would apply: the smallest depth
    # whose congestion is within 10% of the deepest configuration.
    deepest = results[16]["congestion"]
    for depth in (1, 2, 4, 8, 16):
        if results[depth]["congestion"] <= deepest * 1.1 + 1e-9:
            print(
                f"\nsuggested depth: {depth} — congestion within 10%"
                f" of depth-16 at"
                f" {results[16]['slices'] - results[depth]['slices']}"
                f" fewer slices"
            )
            break

    # Show the full occupancy report for the chosen depth.
    config = paper_platform_config(
        traffic="burst", max_packets=1200, buffer_depth=depth, seed=12
    )
    config.sample_buffers = True
    platform = build_platform(config)
    EmulationEngine(platform).run()
    print()
    print(OccupancyReport(platform.network).render())


if __name__ == "__main__":
    main()
