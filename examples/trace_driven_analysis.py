"""Trace-driven emulation: record, save, replay, analyze.

Demonstrates the trace-driven half of the platform (Slides 9 & 11):

1. an MPEG-decoder-like synthetic trace stands in for a "trace
   recorded on a real life application",
2. the trace is saved and re-loaded through the interchange format,
3. trace-driven generators replay it through the platform,
4. the trace-driven receptors' latency analyzer and congestion counter
   are read out through the processor — over the bus, exactly as the
   embedded PowerPC would.

Run:  python examples/trace_driven_analysis.py
"""

import os
import tempfile

from repro import (
    EmulationEngine,
    Processor,
    build_platform,
    paper_platform_config,
)
from repro.traffic.trace import load_trace, save_trace, synthetic_mpeg_trace


def main() -> None:
    # 1. "Record" an application trace: 48 frames of an MPEG-like
    #    stream toward receptor node 7, plus three more streams.
    traces = {
        src: synthetic_mpeg_trace(
            n_frames=48, dst=dst, flits_per_packet=8, seed=10 + src
        )
        for src, dst in ((0, 7), (1, 6), (2, 5), (3, 4))
    }
    for src, trace in traces.items():
        print(
            f"trace for TG{src}: {len(trace)} packets,"
            f" {trace.total_flits} flits,"
            f" offered load {trace.offered_load:.2f} flits/cycle"
        )

    # 2. Round-trip one trace through the on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mpeg.trace")
        save_trace(traces[0], path)
        restored = load_trace(path)
        print(
            f"round-trip through {os.path.basename(path)}:"
            f" {len(restored)} records intact"
        )

    # 3. Replay all four traces through the paper platform.
    config = paper_platform_config(
        traffic="trace", max_packets=None, routing_case="overlap"
    )
    for spec in config.tgs:
        spec.params = {"trace": traces[spec.node], "dst": None}
        spec.params.pop("dst")
    platform = build_platform(config)
    result = EmulationEngine(platform).run()
    print(
        f"\nreplayed {result.packets_received} packets in"
        f" {result.cycles} cycles"
        f" ({result.emulated_seconds * 1e3:.2f} ms at 50 MHz)"
    )

    # 4. Drain the statistics over the bus, like the real firmware.
    processor = Processor(platform)
    print("\nper-receptor trace-driven analysis (read over the bus):")
    for node in (4, 5, 6, 7):
        latency = processor.read_latency_summary(node)
        congestion = processor.read_congestion_summary(node)
        print(
            f"  node {node}: {latency['count']:5d} packets,"
            f" latency min/avg/max ="
            f" {latency['min']}/{latency['mean']:.1f}/{latency['max']},"
            f" stalls = {congestion['stall_cycles']}"
        )

    print(f"\nnetwork congestion rate: {platform.congestion_rate():.4f}")


if __name__ == "__main__":
    main()
