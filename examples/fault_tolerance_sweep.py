"""Fault-tolerance study: when and where can the fabric lose a link?

The emulation platform's reconfiguration story (software-only routing
repair, Slide 13) makes fault studies cheap: a fault schedule is just
another scenario axis, so the sweep runner, result cache and report
helpers cover faulted runs with no extra machinery.  This example
sweeps *when* a link dies (early / mid-run / late) against *where*
(each vertical link of the paper's 2x3 mesh, both directions cut), and
reports the latency and throughput degradation of every combination
against the healthy baseline — the table a designer would consult
before deciding which links deserve hardware redundancy.

Run:  python examples/fault_tolerance_sweep.py [--workers N]
"""

import argparse

from repro.experiments import (
    ScenarioSpec,
    Sweep,
    SweepRunner,
    render_table,
)

#: The paper mesh's vertical (column) links; (1, 4) is the hot middle
#: pair both overlapping flows share.
LINKS = ((0, 3), (1, 4), (2, 5))
CYCLES = (400, 1500, 3000)


def cut(a, b, cycle):
    """A schedule dict killing both directions of a-b at ``cycle``."""
    return {
        "events": [
            {"kind": "link_down", "cycle": cycle, "a": a, "b": b},
            {"kind": "link_down", "cycle": cycle, "a": b, "b": a},
        ]
    }


def fault_label(spec):
    if spec.faults is None:
        return "healthy"
    event = spec.faults.events[0]
    return f"{event.a}-{event.b}@{event.cycle}"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    # Shortest-path tables as the healthy baseline, so the comparison
    # isolates the *detour* cost of each repair (the paper's overlap
    # route case is deliberately congested, which would mask it).
    specs = Sweep.grid(
        ScenarioSpec(
            topology="paper", routing="shortest", packets=400, seed=5
        ),
        faults=[None]
        + [cut(a, b, cycle) for a, b in LINKS for cycle in CYCLES],
    )
    results = SweepRunner(workers=args.workers).run(specs)

    baseline = next(
        r for r in results if r.spec.faults is None
    ).metrics
    base_latency = baseline["mean_latency"]
    base_tput = baseline["accepted_flits_per_cycle"]

    rows = []
    for result in results:
        m = result.metrics
        latency = m["mean_latency"]
        tput = m["accepted_flits_per_cycle"]
        rows.append(
            {
                "fault": fault_label(result.spec),
                "cycles": m["cycles"],
                "latency": f"{latency:.1f}",
                "vs healthy": (
                    f"{latency / base_latency - 1:+.1%}"
                    if result.spec.faults is not None
                    else "-"
                ),
                "tput f/c": f"{tput:.3f}",
                "tput delta": (
                    f"{tput / base_tput - 1:+.1%}"
                    if result.spec.faults is not None
                    else "-"
                ),
                "dropped": m.get("fault_dropped_packets", 0),
                "recovery": m.get("fault_max_recovery_cycles") or "-",
            }
        )
    print(render_table(rows))

    worst = max(
        (r for r in rows if r["fault"] != "healthy"),
        key=lambda r: float(r["vs healthy"].rstrip("%")),
    )
    print(
        f"\nWorst case: cutting {worst['fault'].split('@')[0]} at cycle"
        f" {worst['fault'].split('@')[1]} costs {worst['vs healthy']}"
        f" latency versus the healthy run.  Every run completed — the"
        f" online repair rebuilt the tables around each cut without"
        f" tearing the platform down, dropping only the flits already"
        f" committed to the dead wire."
    )


if __name__ == "__main__":
    main()
