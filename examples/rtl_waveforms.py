"""Dump VCD waveforms from the RTL baseline engine.

Runs the paper platform on the event-driven RTL engine — the stand-in
for the Verilog/ModelSim row of the speed table — while tracing the
control-path signals of the hot middle switch (switch 1, which carries
one of the 90% links), and writes an IEEE-1364 VCD file that GTKWave
or any other waveform viewer opens.

Run:  python examples/rtl_waveforms.py [output.vcd]
"""

import sys

from repro.baselines.rtl import RtlPlatformSim
from repro.baselines.speed import build_packet_schedule
from repro.baselines.vcd import VcdTracer
from repro.noc.routing import paper_routing
from repro.noc.topology import paper_topology


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "switch1.vcd"

    topo = paper_topology()
    routing = paper_routing(topo, "overlap")
    sim = RtlPlatformSim(
        topo, routing, build_packet_schedule(packets_per_flow=20)
    )

    # Trace switch 1: FIFO occupancies, grants, output valids and the
    # wormhole locks — everything a debug session would probe.
    sw = sim.switches[1]
    signals = (
        sw.count + sw.rd + sw.wr + sw.grant + sw.out_valid + sw.lock
    )
    tracer = VcdTracer(sim.sim, signals=signals, width=16)

    cycles = 0
    while not sim.is_drained and cycles < 4000:
        tracer.run_cycles(sim.clock, 16)
        cycles += 16

    tracer.write(out_path)
    print(
        f"simulated {sim.cycle} RTL cycles,"
        f" {sim.sim.total_events} signal events,"
        f" {sim.packets_received} packets delivered"
    )
    print(
        f"traced {len(signals)} signals,"
        f" {len(tracer.changes)} value changes -> {out_path}"
    )
    print("open with: gtkwave " + out_path)


if __name__ == "__main__":
    main()
