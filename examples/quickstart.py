"""Quickstart: run the paper's platform through the full emulation flow.

Builds the 6-switch / 4-TG / 4-TR platform of Genko et al. (DATE 2005),
pushes it through the six-step emulation flow (platform compilation,
physical synthesis, initialisation, software compilation, emulation,
final report) and prints what the monitor would show on the host PC.

Run:  python examples/quickstart.py
"""

from repro import EmulationFlow, paper_platform_config


def main() -> None:
    # One emulation run: uniform traffic, each generator drives its
    # diagonal receptor at 45% of link bandwidth, 2000 packets each.
    config = paper_platform_config(
        traffic="uniform",
        load=0.45,
        max_packets=2000,
        routing_case="overlap",
    )

    flow = EmulationFlow()
    report = flow.run(config)

    print(report.synthesis.render())
    print()
    print(report.report_text)
    print()
    print("flow step timings (wall-clock seconds):")
    for step, seconds in report.step_seconds.items():
        print(f"  {step:<18} {seconds:8.4f}")

    # The headline of the flow: re-running with different *software*
    # settings (seeds, budgets, routing tables) skips re-synthesis.
    second = flow.run(
        config.with_software(name="paper6_rerun"),
    )
    print()
    print(
        f"second run with new software settings: resynthesized ="
        f" {second.resynthesized} (hardware steps cached)"
    )


if __name__ == "__main__":
    main()
