"""Warm-started load sweep: pay for the warm-up ramp exactly once.

Every point of a steady-state load sweep begins with the same wasted
work: cycles of warm-up while queues fill, arbiters settle and the
first packets drain, before the statistics mean anything.  The
checkpoint layer turns that prefix into a one-time cost — emulate the
ramp once, :func:`~repro.experiments.make_ramp_checkpoint` freezes the
complete state, and every operating point *forks* the checkpoint,
retunes the generators' offered load, and measures its horizon from an
already-warm fabric.

Because restore is bit-identical, this is not an approximation: a
warm point's metrics equal the cold re-run's exactly (the bench pins
that), only the redundant ramp emulation disappears.  This example
runs the same sweep both ways, checks the metrics agree, and prints
the speedup — then reruns the warm sweep against the cache to show the
checkpoint hash keying makes replays free.

Run:  python examples/warm_start_sweep.py [--ramp N] [--horizon N]
"""

import argparse
import tempfile
import time

from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    SweepRunner,
    make_ramp_checkpoint,
    render_table,
    run_cold_point,
)

LOADS = (0.2, 0.35, 0.5, 0.65, 0.8)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--ramp", type=int, default=6000,
                        help="warm-up ramp length in cycles")
    parser.add_argument("--horizon", type=int, default=2500,
                        help="measurement horizon per point in cycles")
    args = parser.parse_args()

    # Unbounded budget: the ramp must never exhaust its packets, and
    # the measurement horizon is cycle-bound, not packet-bound.
    spec = ScenarioSpec(load=0.45, packets=None, seed=5)

    started = time.perf_counter()
    checkpoint = make_ramp_checkpoint(spec, ramp_cycles=args.ramp)
    ramp_wall = time.perf_counter() - started
    print(
        f"ramped {args.ramp} cycles once in {ramp_wall:.2f}s"
        f" (checkpoint {checkpoint.content_hash})\n"
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(cache=ResultCache(cache_dir))
        started = time.perf_counter()
        warm = runner.run_warm(checkpoint, LOADS, args.horizon)
        warm_wall = time.perf_counter() - started + ramp_wall

        started = time.perf_counter()
        cold = [
            run_cold_point(spec, args.ramp, load, args.horizon)
            for load in LOADS
        ]
        cold_wall = time.perf_counter() - started

        rows = []
        for w, c in zip(warm, cold):
            identical = w.metrics == c.metrics
            rows.append(
                {
                    "load": f"{w.load:.2f}",
                    "latency": f"{w.metrics['mean_latency']:.1f}",
                    "tput f/c": (
                        f"{w.metrics['accepted_flits_per_cycle']:.3f}"
                    ),
                    "warm s": f"{w.wall_seconds:.2f}",
                    "cold s": f"{c.wall_seconds:.2f}",
                    "identical": "yes" if identical else "NO",
                }
            )
        print(render_table(rows))
        assert all(r["identical"] == "yes" for r in rows), (
            "warm metrics diverged from cold — resume parity broken"
        )

        print(
            f"\nwarm sweep (ramp once + {len(LOADS)} forks):"
            f" {warm_wall:.2f}s   cold sweep (ramp every point):"
            f" {cold_wall:.2f}s   speedup {cold_wall / warm_wall:.2f}x"
        )

        # Replay against the cache: every point hits, nothing runs.
        replay = runner.run_warm(checkpoint, LOADS, args.horizon)
        assert all(r.cached for r in replay)
        print(
            "replay: all"
            f" {len(replay)} points served from cache (keys fold in"
            f" checkpoint hash {checkpoint.content_hash})"
        )


if __name__ == "__main__":
    main()
