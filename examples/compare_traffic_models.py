"""Compare the stochastic traffic models at an equal offered load.

Runs the paper platform under every stochastic model the TG register
bench supports — uniform, burst (2-state Markov), Poisson and
deterministic on/off — with the offered load pinned at the paper's 45%
per generator, and contrasts the resulting congestion and latency.
Also renders a stochastic receptor's histograms ("an image of the
received traffic", Slide 11) for the two extremes.

Run:  python examples/compare_traffic_models.py
"""

from repro import EmulationEngine, build_platform, paper_platform_config

MODELS = ("uniform", "poisson", "onoff", "burst")
PACKETS = 2000


def run_model(model: str, receptor_kind: str = "tracedriven"):
    platform = build_platform(
        paper_platform_config(
            traffic=model,
            load=0.45,
            max_packets=PACKETS,
            receptor_kind=receptor_kind,
            seed=21,
        )
    )
    result = EmulationEngine(platform).run()
    return platform, result


def main() -> None:
    print(
        f"{'model':<10}{'cycles':>10}{'congestion':>12}"
        f"{'mean lat':>10}{'max lat':>9}"
    )
    print("-" * 51)
    results = {}
    for model in MODELS:
        platform, result = run_model(model)
        results[model] = platform
        print(
            f"{model:<10}{result.cycles:>10}"
            f"{platform.congestion_rate():>12.4f}"
            f"{platform.mean_latency():>10.1f}"
            f"{platform.max_latency():>9}"
        )

    print()
    print(
        "burstier processes congest more at the same offered load —"
        " the Slide 20 observation."
    )

    # Histograms from a stochastic receptor: smooth vs bursty arrivals.
    print("\ninter-arrival gap at receptor node 7, uniform traffic:")
    platform, _ = run_model("uniform", receptor_kind="stochastic")
    receptor = next(r for r in platform.receptors if r.node == 7)
    print(receptor.gap_histogram.render(width=30))

    print("\ninter-arrival gap at receptor node 7, burst traffic:")
    platform, _ = run_model("burst", receptor_kind="stochastic")
    receptor = next(r for r in platform.receptors if r.node == 7)
    print(receptor.gap_histogram.render(width=30))


if __name__ == "__main__":
    main()
