"""Design-space exploration with the experiment runner.

The point of the HW/SW flow (Slide 13) is that sweeping *software*
settings — traffic parameters, routing tables — re-uses the
synthesised hardware, while *hardware* parameters (buffer depth) force
re-synthesis.  This example drives the same two-axis sweep as before,
but through ``repro.experiments``: the grid is declared once
(:class:`Sweep`), executed by the :class:`SweepRunner` (pass
``--workers N`` to fan it out over processes), cached on disk so a
re-run is instant, and priced per *hardware signature* with the
synthesis model — the number of distinct signatures is exactly the
number of re-synthesis runs the real flow would need.

* software axis: routing case (no re-synthesis),
* hardware axis: buffer depth (one re-synthesis per depth).

Run:  python examples/design_space_exploration.py [--workers N]
"""

import argparse
import tempfile

from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    Sweep,
    SweepRunner,
    render_table,
)
from repro.fpga.synthesis import synthesize


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    specs = Sweep.grid(
        ScenarioSpec(traffic="burst", packets=800, seed=5),
        buffer_depth=(2, 4, 8),
        routing=("overlap", "split"),
    )

    # Price each distinct hardware signature once — the re-synthesis
    # count of the real flow.  Routing and traffic are software.
    synth_cache = {}
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(
            workers=args.workers, cache=ResultCache(cache_dir)
        )
        results = runner.run(specs)
        rerun = SweepRunner(cache=ResultCache(cache_dir))
        rerun.run(specs)  # second pass: everything from cache

    rows = []
    for result in results:
        spec = result.spec
        config = spec.to_platform_config()
        hw_key = config.hardware_signature()
        resynthesized = hw_key not in synth_cache
        if resynthesized:
            synth_cache[hw_key] = synthesize(config)
        synth = synth_cache[hw_key]
        rows.append(
            {
                "config": f"depth{spec.buffer_depth}_{spec.routing}",
                "depth": spec.buffer_depth,
                "routing": spec.routing,
                "slices": synth.total_slices,
                "clock": f"{synth.clock_hz / 1e6:.0f} MHz",
                "cycles": result.metrics["cycles"],
                "cyc/pkt": f"{result.metrics['cycles_per_packet']:.1f}",
                "synthesis": "yes" if resynthesized else "cached",
            }
        )

    print(render_table(rows))
    print(
        f"\nsynthesis model ran {len(synth_cache)} times for"
        f" {len(rows)} experiments — routing/traffic changes reused"
        f" the cached hardware, exactly the re-synthesis avoidance"
        f" the paper's flow is built around.  The result cache goes"
        f" one further: the verification re-run above executed"
        f" {rerun.last_stats.executed} scenarios"
        f" ({rerun.last_stats.cached} served from disk)."
    )


if __name__ == "__main__":
    main()
