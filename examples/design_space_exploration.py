"""Design-space exploration with the emulation flow.

The point of the HW/SW flow (Slide 13) is that sweeping *software*
settings — traffic parameters, routing tables — re-uses the
synthesised hardware, while *hardware* parameters (buffer depth) force
re-synthesis.  This example sweeps both axes:

* software axis: routing case x burst length (no re-synthesis),
* hardware axis: buffer depth (one re-synthesis per depth),

and prints a cost/performance table: FPGA slices and clock from the
synthesis model against measured congestion and latency.

Run:  python examples/design_space_exploration.py
"""

from repro import EmulationFlow, paper_platform_config


def main() -> None:
    flow = EmulationFlow()
    rows = []

    for depth in (2, 4, 8):
        for case in ("overlap", "split"):
            config = paper_platform_config(
                traffic="burst",
                max_packets=800,
                buffer_depth=depth,
                routing_case=case,
                seed=5,
            )
            config.name = f"depth{depth}_{case}"
            report = flow.run(config)
            platform_latency = (
                report.result.cycles / report.result.packets_received
            )
            rows.append(
                (
                    config.name,
                    depth,
                    case,
                    report.synthesis.total_slices,
                    f"{report.synthesis.clock_hz / 1e6:.0f} MHz",
                    report.result.cycles,
                    f"{platform_latency:.1f}",
                    "yes" if report.resynthesized else "cached",
                )
            )

    headers = (
        "config", "depth", "routing", "slices", "clock",
        "cycles", "cyc/pkt", "synthesis",
    )
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(headers)
    ]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )

    print(
        f"\nsynthesis model ran {flow.synthesis_runs} times for"
        f" {len(rows)} experiments — routing/traffic changes reused"
        f" the cached hardware, exactly the re-synthesis avoidance"
        f" the paper's flow is built around."
    )


if __name__ == "__main__":
    main()
