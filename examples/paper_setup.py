"""The paper's experimental setup (Slide 19), measured end to end.

Reproduces the operating point the paper's evaluation figures are
taken at: four diagonal flows at 45% injection each, two routing
possibilities per flow, and — with the overlapping route case — two
inter-switch links at 90% load.  Prints the measured link-load map for
both route cases and the congestion/latency consequences.

Run:  python examples/paper_setup.py
"""

from repro import EmulationEngine, build_platform, paper_platform_config
from repro.noc.topology import paper_hot_links


def run_case(case: str):
    platform = build_platform(
        paper_platform_config(
            traffic="uniform",
            load=0.45,
            max_packets=3000,
            routing_case=case,
        )
    )
    result = EmulationEngine(platform).run()
    return platform, result


def print_link_map(platform) -> None:
    loads = platform.network.link_loads()
    hot = set(paper_hot_links())
    print("  inter-switch link loads:")
    for pair, load in sorted(loads.items(), key=lambda x: -x[1]):
        marker = "  <-- 90% hot link (Slide 19)" if pair in hot else ""
        if load > 0.01:
            print(f"    {pair[0]}->{pair[1]}  {load:6.1%}{marker}")


def main() -> None:
    print("=" * 64)
    print("Route case 'overlap' — all flows share the middle column")
    print("=" * 64)
    overlap, _ = run_case("overlap")
    print_link_map(overlap)
    print(f"  congestion rate : {overlap.congestion_rate():.4f}")
    print(f"  mean latency    : {overlap.mean_latency():.1f} cycles")
    print(f"  max latency     : {overlap.max_latency()} cycles")

    print()
    print("=" * 64)
    print("Route case 'disjoint' — dimension-ordered, no shared links")
    print("=" * 64)
    disjoint, _ = run_case("disjoint")
    print_link_map(disjoint)
    print(f"  congestion rate : {disjoint.congestion_rate():.4f}")
    print(f"  mean latency    : {disjoint.mean_latency():.1f} cycles")
    print(f"  max latency     : {disjoint.max_latency()} cycles")

    print()
    ratio = overlap.mean_latency() / max(disjoint.mean_latency(), 1e-9)
    print(
        f"sharing the two middle links costs {ratio:.2f}x mean latency"
        f" at the same offered load"
    )


if __name__ == "__main__":
    main()
