"""Legacy setup shim: this host has no `wheel` package, so editable
installs go through `pip install -e . --no-use-pep517`, which needs a
setup.py entry point.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
